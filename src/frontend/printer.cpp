#include "frontend/printer.hpp"

#include <cmath>
#include <sstream>

namespace sap {

namespace {

// Precedence levels: comparison (0) < additive (1) < multiplicative (2)
// < unary minus (3).  Comparisons are non-associative and boolean-valued,
// so they are parenthesized inside any tighter context.
int precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
      return 1;
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return 2;
  }
  return 0;
}

std::string print_number(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

// Expression text is appended into a caller-owned buffer.  (Besides being
// cheaper than building temporaries, this sidesteps GCC 12's -O3
// -Wrestrict false positive on the `"(" + s + ")"` std::string operator+
// chains the previous formulation used.)
void append_with_parens(const Expr& expr, std::string& out, int parent_prec,
                        bool rhs_of_nonassoc);

void append_raw(const Expr& expr, std::string& out) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, NumberLit>) {
          out += print_number(node.value);
        } else if constexpr (std::is_same_v<T, VarRef>) {
          out += node.name;
        } else if constexpr (std::is_same_v<T, ArrayRefExpr>) {
          out += node.name;
          out += '(';
          for (std::size_t i = 0; i < node.indices.size(); ++i) {
            if (i) out += ", ";
            append_with_parens(*node.indices[i], out, 0, false);
          }
          out += ')';
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          out += to_string(node.kind);
          out += '(';
          for (std::size_t i = 0; i < node.args.size(); ++i) {
            if (i) out += ", ";
            append_with_parens(*node.args[i], out, 0, false);
          }
          out += ')';
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          out += '-';
          append_with_parens(*node.operand, out, 3, false);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          const int prec = precedence(node.op);
          const bool nonassoc =
              node.op == BinaryOp::kSub || node.op == BinaryOp::kDiv;
          append_with_parens(*node.lhs, out, prec, false);
          out += ' ';
          out += to_string(node.op);
          out += ' ';
          append_with_parens(*node.rhs, out, prec, nonassoc);
        } else if constexpr (std::is_same_v<T, CompareExpr>) {
          append_with_parens(*node.lhs, out, 1, false);
          out += ' ';
          out += to_string(node.op);
          out += ' ';
          append_with_parens(*node.rhs, out, 1, false);
        }
      },
      expr.node);
}

void append_with_parens(const Expr& expr, std::string& out, int parent_prec,
                        bool rhs_of_nonassoc) {
  int prec = -1;
  if (const auto* bin = std::get_if<BinaryExpr>(&expr.node)) {
    prec = precedence(bin->op);
  } else if (std::holds_alternative<CompareExpr>(expr.node)) {
    prec = 0;  // weakest: parenthesized inside any arithmetic context
  }
  if (prec < 0) {
    append_raw(expr, out);
    return;
  }
  if (prec < parent_prec || (prec == parent_prec && rhs_of_nonassoc)) {
    out += '(';
    append_raw(expr, out);
    out += ')';
  } else {
    append_raw(expr, out);
  }
}

std::string indent_str(int indent) {
  return std::string(static_cast<std::size_t>(indent) * 2, ' ');
}

}  // namespace

std::string print_expr(const Expr& expr) {
  std::string out;
  append_raw(expr, out);
  return out;
}

std::string print_stmt(const Stmt& stmt, int indent) {
  std::ostringstream os;
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, ArrayAssign>) {
          os << indent_str(indent) << node.array << "(";
          for (std::size_t i = 0; i < node.indices.size(); ++i) {
            if (i) os << ", ";
            os << print_expr(*node.indices[i]);
          }
          os << ") = " << print_expr(*node.value);
          if (node.is_reduction) os << "  ! reduction";
          os << '\n';
        } else if constexpr (std::is_same_v<T, ScalarAssign>) {
          os << indent_str(indent) << node.name << " = "
             << print_expr(*node.value) << '\n';
        } else if constexpr (std::is_same_v<T, DoLoop>) {
          os << indent_str(indent) << "DO " << node.var << " = "
             << print_expr(*node.lower) << ", " << print_expr(*node.upper);
          if (node.step) os << ", " << print_expr(*node.step);
          os << '\n';
          for (const auto& s : node.body) os << print_stmt(*s, indent + 1);
          os << indent_str(indent) << "END DO\n";
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          os << indent_str(indent) << "IF (" << print_expr(*node.cond)
             << ") THEN\n";
          for (const auto& s : node.then_body) {
            os << print_stmt(*s, indent + 1);
          }
          if (!node.else_body.empty()) {
            os << indent_str(indent) << "ELSE\n";
            for (const auto& s : node.else_body) {
              os << print_stmt(*s, indent + 1);
            }
          }
          os << indent_str(indent) << "END IF\n";
        } else if constexpr (std::is_same_v<T, ReinitStmt>) {
          os << indent_str(indent) << "REINIT " << node.array << '\n';
        }
      },
      stmt.node);
  return os.str();
}

std::string print_program(const Program& program) {
  std::ostringstream os;
  os << "PROGRAM " << program.name << '\n';
  for (const auto& decl : program.arrays) {
    os << "ARRAY " << decl.name << "(";
    for (std::size_t d = 0; d < decl.dims.size(); ++d) {
      if (d) os << ", ";
      if (decl.dims[d].lower == 1) {
        os << decl.dims[d].upper;
      } else {
        os << decl.dims[d].lower << ":" << decl.dims[d].upper;
      }
    }
    os << ")";
    switch (decl.init) {
      case InitMode::kNone:
        os << " INIT NONE";
        break;
      case InitMode::kAll:
        os << " INIT ALL";
        break;
      case InitMode::kPrefix:
        os << " INIT PREFIX " << decl.init_prefix;
        break;
    }
    os << '\n';
  }
  for (const auto& decl : program.scalars) {
    os << "SCALAR " << decl.name;
    if (decl.init != 0.0) os << " = " << print_number(decl.init);
    os << '\n';
  }
  for (const auto& stmt : program.body) os << print_stmt(*stmt, 0);
  os << "END PROGRAM\n";
  return os.str();
}

}  // namespace sap
