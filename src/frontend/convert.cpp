#include "frontend/convert.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "frontend/affine.hpp"
#include "frontend/sema.hpp"
#include "support/check.hpp"

namespace sap {

std::string to_string(ConversionActionKind kind) {
  switch (kind) {
    case ConversionActionKind::kMarkedReduction: return "reduction";
    case ConversionActionKind::kRenamedVersion: return "version";
    case ConversionActionKind::kInsertedReinit: return "reinit";
  }
  return "?";
}

std::string ConversionResult::report() const {
  if (actions.empty()) {
    return "conversion: program was already in single-assignment form\n";
  }
  std::ostringstream os;
  for (const auto& a : actions) {
    os << to_string(a.kind) << " [" << a.array << "]: " << a.detail << '\n';
  }
  return os.str();
}

namespace {

void rename_reads_in_expr(Expr& expr, const std::string& from,
                          const std::string& to) {
  std::visit(
      [&](auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, ArrayRefExpr>) {
          if (node.name == from) node.name = to;
          for (auto& idx : node.indices) rename_reads_in_expr(*idx, from, to);
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          for (auto& a : node.args) rename_reads_in_expr(*a, from, to);
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          rename_reads_in_expr(*node.operand, from, to);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          rename_reads_in_expr(*node.lhs, from, to);
          rename_reads_in_expr(*node.rhs, from, to);
        } else if constexpr (std::is_same_v<T, CompareExpr>) {
          rename_reads_in_expr(*node.lhs, from, to);
          rename_reads_in_expr(*node.rhs, from, to);
        }
      },
      expr.node);
}

/// Renames every read in a statement subtree (targets untouched).
void rename_reads_in_stmt(Stmt& stmt, const std::string& from,
                          const std::string& to) {
  std::visit(
      [&](auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, ArrayAssign>) {
          for (auto& idx : node.indices) rename_reads_in_expr(*idx, from, to);
          rename_reads_in_expr(*node.value, from, to);
        } else if constexpr (std::is_same_v<T, ScalarAssign>) {
          rename_reads_in_expr(*node.value, from, to);
        } else if constexpr (std::is_same_v<T, DoLoop>) {
          rename_reads_in_expr(*node.lower, from, to);
          rename_reads_in_expr(*node.upper, from, to);
          if (node.step) rename_reads_in_expr(*node.step, from, to);
          for (auto& s : node.body) rename_reads_in_stmt(*s, from, to);
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          rename_reads_in_expr(*node.cond, from, to);
          for (auto& s : node.then_body) rename_reads_in_stmt(*s, from, to);
          for (auto& s : node.else_body) rename_reads_in_stmt(*s, from, to);
        }
      },
      stmt.node);
}

void rename_accumulator_reads(Expr& expr, const ArrayAssign& assign,
                              const std::string& from, const std::string& to) {
  std::visit(
      [&](auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, ArrayRefExpr>) {
          if (node.name == from &&
              node.indices.size() == assign.indices.size()) {
            bool same = true;
            for (std::size_t i = 0; i < node.indices.size(); ++i) {
              if (!equal(*node.indices[i], *assign.indices[i])) same = false;
            }
            if (same) node.name = to;
          }
          for (auto& idx : node.indices) {
            rename_accumulator_reads(*idx, assign, from, to);
          }
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          for (auto& a : node.args) {
            rename_accumulator_reads(*a, assign, from, to);
          }
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          rename_accumulator_reads(*node.operand, assign, from, to);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          rename_accumulator_reads(*node.lhs, assign, from, to);
          rename_accumulator_reads(*node.rhs, assign, from, to);
        } else if constexpr (std::is_same_v<T, CompareExpr>) {
          rename_accumulator_reads(*node.lhs, assign, from, to);
          rename_accumulator_reads(*node.rhs, assign, from, to);
        }
      },
      expr.node);
}

/// Renames write targets (and their reduction-accumulator reads).
void rename_writes_in_stmt(Stmt& stmt, const std::string& from,
                           const std::string& to) {
  if (auto* assign = std::get_if<ArrayAssign>(&stmt.node)) {
    if (assign->array != from) return;
    if (assign->is_reduction) {
      rename_accumulator_reads(*assign->value, *assign, from, to);
    }
    assign->array = to;
  } else if (auto* loop = std::get_if<DoLoop>(&stmt.node)) {
    for (auto& s : loop->body) rename_writes_in_stmt(*s, from, to);
  } else if (auto* branch = std::get_if<IfStmt>(&stmt.node)) {
    for (auto& s : branch->then_body) rename_writes_in_stmt(*s, from, to);
    for (auto& s : branch->else_body) rename_writes_in_stmt(*s, from, to);
  } else if (auto* reinit = std::get_if<ReinitStmt>(&stmt.node)) {
    if (reinit->array == from) reinit->array = to;
  }
}

bool writes_array(const Stmt& stmt, const std::string& array) {
  if (const auto* assign = std::get_if<ArrayAssign>(&stmt.node)) {
    return assign->array == array;
  }
  if (const auto* loop = std::get_if<DoLoop>(&stmt.node)) {
    for (const auto& s : loop->body) {
      if (writes_array(*s, array)) return true;
    }
  }
  if (const auto* branch = std::get_if<IfStmt>(&stmt.node)) {
    for (const auto& s : branch->then_body) {
      if (writes_array(*s, array)) return true;
    }
    for (const auto& s : branch->else_body) {
      if (writes_array(*s, array)) return true;
    }
  }
  return false;
}

void collect_writes(const Stmt& stmt, std::set<std::string>& out) {
  if (const auto* assign = std::get_if<ArrayAssign>(&stmt.node)) {
    out.insert(assign->array);
  } else if (const auto* loop = std::get_if<DoLoop>(&stmt.node)) {
    for (const auto& s : loop->body) collect_writes(*s, out);
  } else if (const auto* branch = std::get_if<IfStmt>(&stmt.node)) {
    for (const auto& s : branch->then_body) collect_writes(*s, out);
    for (const auto& s : branch->else_body) collect_writes(*s, out);
  }
}

class Converter {
 public:
  explicit Converter(const Program& input) : program_(clone(input)) {}

  ConversionResult run() {
    SemanticInfo sema = analyze(program_);  // marks reductions
    for (const auto& site : sema.assign_sites) {
      if (site.assign->is_reduction) {
        actions_.push_back({ConversionActionKind::kMarkedReduction,
                            site.assign->array,
                            "self-accumulation commits once per element"});
      }
    }

    insert_reinits(sema);
    version_arrays();
    analyze(program_);  // validate the transformed program

    ConversionResult result;
    result.program = std::move(program_);
    result.actions = std::move(actions_);
    return result;
  }

 private:
  /// In-loop rewrites cannot be statically renamed; insert the §5 protocol.
  void insert_reinits(const SemanticInfo& sema) {
    std::set<std::pair<const DoLoop*, std::string>> pending;
    for (const auto& site : sema.assign_sites) {
      if (site.assign->is_reduction) continue;
      AffineContext ctx{&program_, &sema, site.loops};
      const ArrayShape shape(
          program_.arrays[sema.arrays.at(site.assign->array)].dims);
      ArrayRefExpr target;
      target.name = site.assign->array;
      for (const auto& idx : site.assign->indices) {
        target.indices.push_back(clone(*idx));
      }
      const AffineIndex aff = element_affine(target, shape, ctx);
      if (!aff.affine) continue;
      for (const auto* loop : site.loops) {
        const auto stride = stride_per_trip(aff, *loop, ctx);
        const auto trips = const_trip_count(*loop, ctx);
        if (stride && *stride == 0 && (!trips || *trips > 1)) {
          pending.insert({loop, site.assign->array});
        }
      }
    }
    if (pending.empty()) return;
    for (auto& stmt : program_.body) apply_reinits(*stmt, pending);
  }

  void apply_reinits(
      Stmt& stmt,
      const std::set<std::pair<const DoLoop*, std::string>>& pending) {
    if (auto* branch = std::get_if<IfStmt>(&stmt.node)) {
      for (auto& child : branch->then_body) apply_reinits(*child, pending);
      for (auto& child : branch->else_body) apply_reinits(*child, pending);
      return;
    }
    auto* loop = std::get_if<DoLoop>(&stmt.node);
    if (!loop) return;
    for (const auto& [target_loop, array] : pending) {
      if (target_loop != loop) continue;
      for (std::size_t i = 0; i < loop->body.size(); ++i) {
        if (writes_array(*loop->body[i], array)) {
          auto reinit = std::make_unique<Stmt>();
          reinit->node = ReinitStmt{array};
          loop->body.insert(
              loop->body.begin() + static_cast<std::ptrdiff_t>(i),
              std::move(reinit));
          actions_.push_back(
              {ConversionActionKind::kInsertedReinit, array,
               "array is reproduced every iteration of loop '" + loop->var +
                   "'; host-processor re-init inserted"});
          reinit_arrays_.insert(array);
          break;
        }
      }
    }
    for (auto& child : loop->body) apply_reinits(*child, pending);
  }

  /// Sequential overwrites at top level: give the second producer a fresh
  /// version name, leaving intermediate reads on the old one.
  void version_arrays() {
    std::map<std::string, std::string> live;  // base -> current version name
    std::map<std::string, int> version_count;
    std::set<std::string> produced;  // version names already written

    for (const auto& decl : program_.arrays) {
      live[decl.name] = decl.name;
      // INIT ALL arrays cannot be written at all (sema enforces this) and
      // INIT PREFIX arrays seed recurrences whose writes land beyond the
      // prefix — neither warrants a fresh version on first write.  A
      // write *into* a prefix is a violation sa_check/runtime reports.
    }

    std::vector<ArrayDecl> new_decls;
    for (auto& stmt : program_.body) {
      std::set<std::string> writes;
      collect_writes(*stmt, writes);

      // 1. Version decisions: a write to an already-produced array gets a
      //    fresh name.  Targets in the source always carry base names.
      std::map<std::string, std::string> fresh_names;
      for (const auto& base : writes) {
        // Arrays flagged for REINIT reuse their storage legally.
        if (reinit_arrays_.count(base)) continue;
        if (!produced.count(live[base])) continue;
        const int v = ++version_count[base] + 1;
        const std::string fresh = base + "__" + std::to_string(v);
        fresh_names[base] = fresh;

        const auto old_it =
            std::find_if(program_.arrays.begin(), program_.arrays.end(),
                         [&](const ArrayDecl& d) { return d.name == base; });
        SAP_CHECK(old_it != program_.arrays.end(), "missing base declaration");
        ArrayDecl decl;
        decl.name = fresh;
        decl.dims = old_it->dims;
        decl.init = InitMode::kNone;
        new_decls.push_back(decl);
        actions_.push_back(
            {ConversionActionKind::kRenamedVersion, base,
             "sequential overwrite expanded to new version '" + fresh + "'"});
      }

      // 2. Rename the writes (and reduction accumulators) to fresh names.
      for (const auto& [base, fresh] : fresh_names) {
        rename_writes_in_stmt(*stmt, base, fresh);
      }

      // 3. Redirect remaining reads to the pre-statement live versions.
      for (const auto& [base, name] : live) {
        if (name != base) rename_reads_in_stmt(*stmt, base, name);
      }

      // 4. Commit state.
      for (const auto& [base, fresh] : fresh_names) live[base] = fresh;
      for (const auto& base : writes) produced.insert(live[base]);
    }

    for (auto& decl : new_decls) program_.arrays.push_back(std::move(decl));
  }

  Program program_;
  std::vector<ConversionAction> actions_;
  std::set<std::string> reinit_arrays_;
};

}  // namespace

ConversionResult convert_to_single_assignment(const Program& input) {
  return Converter(input).run();
}

}  // namespace sap
