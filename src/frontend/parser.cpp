#include "frontend/parser.hpp"

#include <cmath>
#include <optional>

#include "frontend/lexer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

namespace {

std::optional<IntrinsicKind> intrinsic_by_name(const std::string& name) {
  if (name == "IDIV") return IntrinsicKind::kIDiv;
  if (name == "MOD") return IntrinsicKind::kMod;
  if (name == "MIN") return IntrinsicKind::kMin;
  if (name == "MAX") return IntrinsicKind::kMax;
  if (name == "ABS") return IntrinsicKind::kAbs;
  if (name == "AND") return IntrinsicKind::kAnd;
  if (name == "OR") return IntrinsicKind::kOr;
  if (name == "NOT") return IntrinsicKind::kNot;
  if (name == "SELECT") return IntrinsicKind::kSelect;
  return std::nullopt;
}

std::optional<CompareOp> compare_op_for(TokenKind kind) {
  switch (kind) {
    case TokenKind::kLess: return CompareOp::kLt;
    case TokenKind::kLessEqual: return CompareOp::kLe;
    case TokenKind::kGreater: return CompareOp::kGt;
    case TokenKind::kGreaterEqual: return CompareOp::kGe;
    case TokenKind::kEqualEqual: return CompareOp::kEq;
    case TokenKind::kNotEqual: return CompareOp::kNe;
    default: return std::nullopt;
  }
}

}  // namespace

Parser::Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {
  SAP_CHECK(!tokens_.empty() && tokens_.back().kind == TokenKind::kEndOfFile,
            "token stream must end with EOF");
}

Program Parser::parse(std::string_view source) {
  const obs::Span span("compile", "parse");
  static obs::Counter& parses = obs::counter("compile/parses");
  parses.add(1);
  Lexer lexer(source);
  Parser parser(lexer.tokenize());
  return parser.parse_program();
}

const Token& Parser::peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& t = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::check(TokenKind kind) const { return peek().kind == kind; }

bool Parser::match(TokenKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind kind, const std::string& context) {
  if (!check(kind)) {
    fail("expected " + to_string(kind) + " " + context + ", found " +
         to_string(peek().kind) +
         (peek().text.empty() ? "" : " '" + peek().text + "'"));
  }
  return advance();
}

void Parser::expect_newline(const std::string& context) {
  if (check(TokenKind::kEndOfFile)) return;
  expect(TokenKind::kNewline, context);
}

void Parser::fail(const std::string& message) const {
  const auto& loc = peek().loc;
  throw ParseError(message, loc.line, loc.column);
}

Program Parser::parse_program() {
  Program program;
  match(TokenKind::kNewline);
  expect(TokenKind::kKwProgram, "at start of program");
  program.name = expect(TokenKind::kIdentifier, "after PROGRAM").text;
  expect_newline("after program name");

  while (check(TokenKind::kKwArray) || check(TokenKind::kKwScalar)) {
    if (check(TokenKind::kKwArray)) {
      program.arrays.push_back(parse_array_decl());
    } else {
      program.scalars.push_back(parse_scalar_decl());
    }
  }

  while (!check(TokenKind::kKwEnd)) {
    if (check(TokenKind::kEndOfFile)) fail("missing END PROGRAM");
    program.body.push_back(parse_stmt());
  }
  expect(TokenKind::kKwEnd, "to close program");
  expect(TokenKind::kKwProgram, "after END");
  match(TokenKind::kNewline);
  if (!check(TokenKind::kEndOfFile)) fail("trailing input after END PROGRAM");
  return program;
}

std::int64_t Parser::parse_signed_int(const std::string& context) {
  const bool negative = match(TokenKind::kMinus);
  if (!negative) match(TokenKind::kPlus);
  const Token& num = expect(TokenKind::kNumber, context);
  const double v = num.number;
  if (v != std::floor(v)) {
    throw ParseError("expected integer " + context, num.loc.line,
                     num.loc.column);
  }
  const auto magnitude = static_cast<std::int64_t>(v);
  return negative ? -magnitude : magnitude;
}

ArrayDecl Parser::parse_array_decl() {
  ArrayDecl decl;
  decl.loc = peek().loc;
  expect(TokenKind::kKwArray, "");
  decl.name = expect(TokenKind::kIdentifier, "after ARRAY").text;
  expect(TokenKind::kLParen, "after array name");
  do {
    const std::int64_t first = parse_signed_int("in array dimension");
    DimBound dim;
    if (match(TokenKind::kColon)) {
      dim.lower = first;
      dim.upper = parse_signed_int("after ':' in array dimension");
    } else {
      dim.lower = 1;
      dim.upper = first;
    }
    if (dim.upper < dim.lower) {
      throw ParseError("empty dimension in array '" + decl.name + "'",
                       decl.loc.line, decl.loc.column);
    }
    decl.dims.push_back(dim);
  } while (match(TokenKind::kComma));
  expect(TokenKind::kRParen, "to close array dimensions");

  if (match(TokenKind::kKwInit)) {
    if (match(TokenKind::kKwAll)) {
      decl.init = InitMode::kAll;
    } else if (match(TokenKind::kKwNone)) {
      decl.init = InitMode::kNone;
    } else if (match(TokenKind::kKwPrefix)) {
      decl.init = InitMode::kPrefix;
      decl.init_prefix = parse_signed_int("after INIT PREFIX");
      if (decl.init_prefix < 0) {
        throw ParseError("INIT PREFIX must be non-negative", decl.loc.line,
                         decl.loc.column);
      }
    } else {
      fail("expected ALL, NONE or PREFIX after INIT");
    }
  }
  expect_newline("after array declaration");
  return decl;
}

ScalarDecl Parser::parse_scalar_decl() {
  ScalarDecl decl;
  decl.loc = peek().loc;
  expect(TokenKind::kKwScalar, "");
  decl.name = expect(TokenKind::kIdentifier, "after SCALAR").text;
  if (match(TokenKind::kEquals)) {
    const bool negative = match(TokenKind::kMinus);
    const Token& num = expect(TokenKind::kNumber, "after '=' in SCALAR");
    decl.init = negative ? -num.number : num.number;
  }
  expect_newline("after scalar declaration");
  return decl;
}

StmtPtr Parser::parse_stmt() {
  // Skip blank statement separators.
  while (match(TokenKind::kNewline)) {
  }
  if (check(TokenKind::kKwDo)) return parse_do_loop();
  if (check(TokenKind::kKwIf)) return parse_if();
  if (check(TokenKind::kKwElse)) {
    fail("ELSE without a matching IF ... THEN");
  }
  if (check(TokenKind::kKwReinit)) {
    auto stmt = std::make_unique<Stmt>();
    stmt->loc = peek().loc;
    advance();
    ReinitStmt reinit;
    reinit.array = expect(TokenKind::kIdentifier, "after REINIT").text;
    expect_newline("after REINIT statement");
    stmt->node = std::move(reinit);
    return stmt;
  }
  if (check(TokenKind::kIdentifier)) return parse_assignment();
  fail("expected a statement (DO loop, assignment or REINIT)");
}

StmtPtr Parser::parse_do_loop() {
  auto stmt = std::make_unique<Stmt>();
  stmt->loc = peek().loc;
  expect(TokenKind::kKwDo, "");
  DoLoop loop;
  loop.var = expect(TokenKind::kIdentifier, "after DO").text;
  expect(TokenKind::kEquals, "after loop variable");
  loop.lower = parse_expr();
  expect(TokenKind::kComma, "between loop bounds");
  loop.upper = parse_expr();
  if (match(TokenKind::kComma)) loop.step = parse_expr();
  expect_newline("after DO header");

  while (!check(TokenKind::kKwEnd)) {
    if (check(TokenKind::kEndOfFile)) fail("missing END DO");
    loop.body.push_back(parse_stmt());
  }
  expect(TokenKind::kKwEnd, "to close DO loop");
  expect(TokenKind::kKwDo, "after END");
  expect_newline("after END DO");
  stmt->node = std::move(loop);
  return stmt;
}

StmtPtr Parser::parse_if() {
  auto stmt = std::make_unique<Stmt>();
  stmt->loc = peek().loc;
  expect(TokenKind::kKwIf, "");
  IfStmt branch;
  expect(TokenKind::kLParen, "after IF");
  branch.cond = parse_expr();
  expect(TokenKind::kRParen, "to close IF condition");
  expect(TokenKind::kKwThen, "after IF condition");
  expect_newline("after THEN");

  while (!check(TokenKind::kKwEnd) && !check(TokenKind::kKwElse)) {
    if (check(TokenKind::kEndOfFile)) fail("missing END IF");
    branch.then_body.push_back(parse_stmt());
  }
  if (match(TokenKind::kKwElse)) {
    expect_newline("after ELSE");
    while (!check(TokenKind::kKwEnd)) {
      if (check(TokenKind::kEndOfFile)) fail("missing END IF");
      if (check(TokenKind::kKwElse)) {
        fail("duplicate ELSE in IF ... END IF");
      }
      branch.else_body.push_back(parse_stmt());
    }
  }
  expect(TokenKind::kKwEnd, "to close IF");
  expect(TokenKind::kKwIf, "after END to close IF");
  expect_newline("after END IF");
  stmt->node = std::move(branch);
  return stmt;
}

StmtPtr Parser::parse_assignment() {
  auto stmt = std::make_unique<Stmt>();
  stmt->loc = peek().loc;
  const std::string name = expect(TokenKind::kIdentifier, "").text;

  if (check(TokenKind::kLParen)) {
    ArrayAssign assign;
    assign.array = name;
    advance();  // '('
    do {
      assign.indices.push_back(parse_expr());
    } while (match(TokenKind::kComma));
    expect(TokenKind::kRParen, "to close assignment target indices");
    expect(TokenKind::kEquals, "in array assignment");
    assign.value = parse_expr();
    expect_newline("after assignment");
    stmt->node = std::move(assign);
    return stmt;
  }

  expect(TokenKind::kEquals, "in scalar assignment");
  ScalarAssign assign;
  assign.name = name;
  assign.value = parse_expr();
  expect_newline("after assignment");
  stmt->node = std::move(assign);
  return stmt;
}

ExprPtr Parser::parse_expr() {
  ExprPtr lhs = parse_sum();
  const SourceLocation loc = peek().loc;
  const auto op = compare_op_for(peek().kind);
  if (!op) return lhs;
  advance();
  ExprPtr cmp = make_compare(*op, std::move(lhs), parse_sum(), loc);
  if (compare_op_for(peek().kind)) {
    fail("chained comparisons are not allowed; combine with AND/OR");
  }
  return cmp;
}

ExprPtr Parser::parse_sum() {
  ExprPtr lhs = parse_term();
  for (;;) {
    const SourceLocation loc = peek().loc;
    if (match(TokenKind::kPlus)) {
      lhs = make_binary(BinaryOp::kAdd, std::move(lhs), parse_term(), loc);
    } else if (match(TokenKind::kMinus)) {
      lhs = make_binary(BinaryOp::kSub, std::move(lhs), parse_term(), loc);
    } else {
      return lhs;
    }
  }
}

ExprPtr Parser::parse_term() {
  ExprPtr lhs = parse_factor();
  for (;;) {
    const SourceLocation loc = peek().loc;
    if (match(TokenKind::kStar)) {
      lhs = make_binary(BinaryOp::kMul, std::move(lhs), parse_factor(), loc);
    } else if (match(TokenKind::kSlash)) {
      lhs = make_binary(BinaryOp::kDiv, std::move(lhs), parse_factor(), loc);
    } else {
      return lhs;
    }
  }
}

ExprPtr Parser::parse_factor() {
  const SourceLocation loc = peek().loc;
  if (match(TokenKind::kMinus)) return make_neg(parse_factor(), loc);
  match(TokenKind::kPlus);  // unary plus is a no-op
  return parse_primary();
}

ExprPtr Parser::parse_primary() {
  const SourceLocation loc = peek().loc;
  if (check(TokenKind::kNumber)) {
    return make_number(advance().number, loc);
  }
  if (match(TokenKind::kLParen)) {
    ExprPtr inner = parse_expr();
    expect(TokenKind::kRParen, "to close parenthesized expression");
    return inner;
  }
  if (check(TokenKind::kIdentifier)) {
    const std::string name = advance().text;
    if (!check(TokenKind::kLParen)) return make_var(name, loc);
    advance();  // '('
    std::vector<ExprPtr> args;
    do {
      args.push_back(parse_expr());
    } while (match(TokenKind::kComma));
    expect(TokenKind::kRParen, "to close argument list");
    if (auto kind = intrinsic_by_name(name)) {
      return make_intrinsic(*kind, std::move(args), loc);
    }
    return make_array_ref(name, std::move(args), loc);
  }
  fail("expected an expression");
}

}  // namespace sap
