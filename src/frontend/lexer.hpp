// Hand-written lexer for the loop DSL.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "frontend/token.hpp"

namespace sap {

class Lexer {
 public:
  explicit Lexer(std::string_view source);

  /// Tokenizes the whole input; the final token is kEndOfFile.
  /// Throws ParseError on malformed input.
  std::vector<Token> tokenize();

 private:
  Token next_token();
  char peek() const noexcept;
  char advance() noexcept;
  bool at_end() const noexcept;
  SourceLocation here() const noexcept;

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace sap
