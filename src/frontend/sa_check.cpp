#include "frontend/sa_check.hpp"

#include <cmath>
#include <map>
#include <optional>
#include <sstream>

#include "frontend/affine.hpp"

namespace sap {

std::string to_string(SaFindingKind kind) {
  switch (kind) {
    case SaFindingKind::kProvenViolation: return "violation";
    case SaFindingKind::kPossibleViolation: return "possible-violation";
    case SaFindingKind::kReductionRewrite: return "reduction";
  }
  return "?";
}

bool SaCheckResult::has_proven_violation() const noexcept {
  for (const auto& f : findings) {
    if (f.kind == SaFindingKind::kProvenViolation) return true;
  }
  return false;
}

std::string SaCheckResult::report() const {
  if (findings.empty()) return "single-assignment: OK (no findings)\n";
  std::ostringstream os;
  for (const auto& f : findings) {
    os << to_string(f.kind) << " [" << f.array << "]: " << f.message << '\n';
  }
  return os.str();
}

namespace {

/// Linear range [lo, hi] an affine write can reach, when bounds are
/// compile-time constants.  nullopt when any trip count is unknown.
std::optional<std::pair<std::int64_t, std::int64_t>> write_range(
    const AssignSite& site, const AffineIndex& aff, const AffineContext& ctx) {
  if (!aff.affine || !aff.constant_known) return std::nullopt;
  std::int64_t lo = aff.constant;
  std::int64_t hi = aff.constant;
  for (const auto* loop : site.loops) {
    const auto stride = stride_per_trip(aff, *loop, ctx);
    const auto trips = const_trip_count(*loop, ctx);
    if (!stride || !trips) return std::nullopt;
    // The loop-entry value of the loop variable contributes to the affine
    // constant only when the lower bound is constant — which const_trip_count
    // already requires; stride*(trips-1) is the total travel.
    const std::int64_t lower_bound_contrib = [&]() -> std::int64_t {
      const auto it = aff.coeffs.find(loop->var);
      if (it == aff.coeffs.end()) return 0;
      const auto lo_v = eval_const_expr(*loop->lower, ctx);
      return it->second * static_cast<std::int64_t>(std::llround(*lo_v));
    }();
    const std::int64_t travel = *stride * (*trips - 1);
    lo += lower_bound_contrib + std::min<std::int64_t>(0, travel);
    hi += lower_bound_contrib + std::max<std::int64_t>(0, travel);
  }
  return std::make_pair(lo, hi);
}

}  // namespace

SaCheckResult check_single_assignment(const Program& program,
                                      const SemanticInfo& sema) {
  SaCheckResult result;

  struct SiteFacts {
    const AssignSite* site;
    AffineIndex aff;
    std::optional<std::pair<std::int64_t, std::int64_t>> range;
  };
  std::map<std::string, std::vector<SiteFacts>> by_array;

  for (const auto& site : sema.assign_sites) {
    const ArrayAssign& assign = *site.assign;
    AffineContext ctx{&program, &sema, site.loops};
    const ArrayShape shape(program.arrays[sema.arrays.at(assign.array)].dims);

    ArrayRefExpr target;
    target.name = assign.array;
    for (const auto& idx : assign.indices) target.indices.push_back(clone(*idx));
    const AffineIndex aff = element_affine(target, shape, ctx);

    if (assign.is_reduction) {
      result.findings.push_back(
          {SaFindingKind::kReductionRewrite, assign.array,
           "self-accumulation rewritten as owner-local reduction (single "
           "commit per element)"});
    }

    if (!aff.affine) {
      result.findings.push_back(
          {SaFindingKind::kPossibleViolation, assign.array,
           "write index is not affine; write-once property cannot be "
           "proven statically"});
      by_array[assign.array].push_back({&site, aff, std::nullopt});
      continue;
    }

    // Within-site check: a loop whose trips exceed 1 while the written
    // element stands still rewrites the same cell — unless the statement
    // is a reduction (hoisted commit).  Skipped when the affine constant
    // is unknown (induction resets like ICCG's advance the element in a
    // way per-loop strides cannot see).  A *guarded* write is only a
    // possible violation: the guard decides how many of the trips
    // actually write, so the double write is data-dependent (the runtime
    // still traps it when it happens).
    if (!assign.is_reduction && aff.constant_known) {
      const bool guarded = !site.conditionals.empty();
      for (const auto* loop : site.loops) {
        const auto stride = stride_per_trip(aff, *loop, ctx);
        if (!stride) continue;
        if (*stride != 0) continue;
        const auto trips = const_trip_count(*loop, ctx);
        if (trips && *trips <= 1) continue;
        const bool proven = trips.has_value() && !guarded;
        result.findings.push_back(
            {proven ? SaFindingKind::kProvenViolation
                    : SaFindingKind::kPossibleViolation,
             assign.array,
             "write target is invariant in loop '" + loop->var +
                 "' which iterates" +
                 (trips ? " " + std::to_string(*trips) + " times"
                        : " an unknown number of times") +
                 (guarded ? " (guarded: write count is data-dependent)"
                          : "")});
      }
    }

    AffineContext range_ctx{&program, &sema, site.loops};
    by_array[assign.array].push_back(
        {&site, aff, write_range(site, aff, range_ctx)});
  }

  // Cross-site overlap: two distinct statements writing intersecting
  // element ranges of one array.  Statements in *different arms of the
  // same IF* are exempt: they can never both execute in one control
  // instance, so their definitions merge into a single write per cell —
  // the DSA translation of conditionals (DESIGN.md).
  for (const auto& [array, sites] : by_array) {
    for (std::size_t a = 0; a < sites.size(); ++a) {
      for (std::size_t b = a + 1; b < sites.size(); ++b) {
        if (mutually_exclusive(*sites[a].site, *sites[b].site)) continue;
        const auto& ra = sites[a].range;
        const auto& rb = sites[b].range;
        if (!ra || !rb) {
          result.findings.push_back(
              {SaFindingKind::kPossibleViolation, array,
               "two statements write '" + array +
                   "' and their ranges cannot be bounded statically"});
          continue;
        }
        const bool disjoint = ra->second < rb->first || rb->second < ra->first;
        if (!disjoint) {
          result.findings.push_back(
              {SaFindingKind::kPossibleViolation, array,
               "two statements write overlapping ranges [" +
                   std::to_string(ra->first) + "," +
                   std::to_string(ra->second) + "] and [" +
                   std::to_string(rb->first) + "," +
                   std::to_string(rb->second) + "]"});
        }
      }
    }

    // Writes into an initialized prefix are double writes.
    const auto& decl = program.arrays[sema.arrays.at(array)];
    if (decl.init == InitMode::kPrefix) {
      for (const auto& facts : sites) {
        if (facts.range && facts.range->first < decl.init_prefix) {
          result.findings.push_back(
              {SaFindingKind::kProvenViolation, array,
               "write range starts at " + std::to_string(facts.range->first) +
                   " inside the initialized prefix of " +
                   std::to_string(decl.init_prefix) + " elements"});
        }
      }
    }
  }

  return result;
}

}  // namespace sap
