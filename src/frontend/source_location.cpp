#include "frontend/source_location.hpp"

namespace sap {

std::string SourceLocation::to_string() const {
  if (is_synthesized()) return "<builder>";
  return std::to_string(line) + ":" + std::to_string(column);
}

}  // namespace sap
