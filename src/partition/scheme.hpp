// Page-to-PE ownership maps.
//
// §2: "A page p is allocated to the local memory of PE P if p = P mod N" —
// the Modulo (cyclic) scheme the paper evaluates.  §9 observes that "our
// simple modulo partitioning scheme performs worse for certain loops than a
// division scheme" and calls for selectable schemes; we provide Modulo,
// Block ("division": contiguous page ranges) and BlockCyclic (a
// generalization of both) behind one interface, plus the ablation bench
// that compares them (A1 in DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "memory/page.hpp"

namespace sap {

/// PE identifier.
using PeId = std::uint32_t;

enum class PartitionKind {
  kModulo,       // page p -> PE (p mod N)            (the paper's scheme)
  kBlock,        // contiguous runs of ceil(P/N) pages (the "division" scheme)
  kBlockCyclic,  // blocks of b pages dealt round-robin
};

std::string to_string(PartitionKind kind);

/// Maps a page of an array onto its owning PE.  Stateless and cheap; the
/// partitioner below binds it to a machine's PE count.
class PartitionScheme {
 public:
  virtual ~PartitionScheme() = default;

  /// Owner of page `page` given the array's total `page_count` and `num_pes`.
  /// Pre: 0 <= page < page_count, num_pes >= 1.
  virtual PeId owner(PageIndex page, std::int64_t page_count,
                     std::uint32_t num_pes) const = 0;

  virtual PartitionKind kind() const noexcept = 0;
  virtual std::string name() const = 0;
};

/// Factory. `block_size` only matters for kBlockCyclic.
std::unique_ptr<PartitionScheme> make_partition_scheme(
    PartitionKind kind, std::int64_t block_size = 2);

}  // namespace sap
