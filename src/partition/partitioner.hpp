// Binds a partition assignment to a concrete machine (page size + PE count)
// and answers ownership queries for elements and pages.
//
// Since DESIGN.md §14 the assignment is per-array: a machine-wide default
// scheme plus named overrides (MachineConfig.per_array).  Every ownership
// query funnels through scheme_for(), which resolves an array's scheme once
// and memoizes the resolution on the array itself (SaArray::partition_hint),
// so the hot path is one atomic load + pointer compare — O(1), no map
// lookups, and safe under the sharded runtime's concurrent queries (all
// racers store the same deterministic pointer).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "machine/config.hpp"
#include "memory/array_registry.hpp"
#include "memory/page.hpp"
#include "partition/scheme.hpp"

namespace sap {

class Partitioner {
 public:
  /// Uniform assignment: one scheme for every array.
  Partitioner(std::unique_ptr<PartitionScheme> scheme, std::int64_t page_size,
              std::uint32_t num_pes);

  /// Per-array assignment from the config's default + overrides.
  explicit Partitioner(const MachineConfig& config);

  // Resolution entries hand out pointers into this object; copying or
  // moving would silently invalidate hints cached on arrays.
  Partitioner(const Partitioner&) = delete;
  Partitioner& operator=(const Partitioner&) = delete;

  std::int64_t page_size() const noexcept { return page_size_; }
  std::uint32_t num_pes() const noexcept { return num_pes_; }

  /// The machine-wide default scheme (arrays without an override).
  const PartitionScheme& scheme() const noexcept {
    return *default_resolution_.scheme;
  }

  /// The scheme governing `array` under this partitioner's assignment.
  const PartitionScheme& scheme_for(const SaArray& array) const {
    if (const void* hint = array.partition_hint()) {
      const auto* r = static_cast<const Resolution*>(hint);
      if (r->owner == this) return *r->scheme;
    }
    return *resolve(array).scheme;
  }

  /// Page holding linear element `linear` of any array.
  PageIndex page_of_element(std::int64_t linear) const noexcept {
    return page_of(linear, page_size_);
  }

  /// Owner PE of a page of `array`.
  PeId owner_of_page(const SaArray& array, PageIndex page) const;

  /// Owner PE of an element of `array`.
  PeId owner_of_element(const SaArray& array, std::int64_t linear) const;

  /// All pages of `array` owned by `pe`, ascending.
  std::vector<PageIndex> pages_owned_by(const SaArray& array, PeId pe) const;

  /// Number of elements of `array` that live on `pe` (accounts for the
  /// partial final page).
  std::int64_t elements_owned_by(const SaArray& array, PeId pe) const;

 private:
  /// A resolved (partitioner, scheme) pair; `owner` tags the hint so an
  /// array touched by two partitioners never reads the wrong table.
  struct Resolution {
    const Partitioner* owner;
    const PartitionScheme* scheme;
  };
  struct NamedScheme {
    std::string array;
    std::unique_ptr<PartitionScheme> scheme;
    Resolution resolution;
  };

  /// Cold path: name lookup in the override table, hint store.
  const Resolution& resolve(const SaArray& array) const;

  std::unique_ptr<PartitionScheme> default_scheme_;
  // Built once in the constructor and never mutated after, so the
  // Resolution addresses handed to arrays stay stable.
  std::vector<NamedScheme> named_;
  Resolution default_resolution_;
  std::int64_t page_size_;
  std::uint32_t num_pes_;
};

}  // namespace sap
