// Binds a partition scheme to a concrete machine (page size + PE count)
// and answers ownership queries for elements and pages.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "memory/array_registry.hpp"
#include "memory/page.hpp"
#include "partition/scheme.hpp"

namespace sap {

class Partitioner {
 public:
  Partitioner(std::unique_ptr<PartitionScheme> scheme, std::int64_t page_size,
              std::uint32_t num_pes);

  std::int64_t page_size() const noexcept { return page_size_; }
  std::uint32_t num_pes() const noexcept { return num_pes_; }
  const PartitionScheme& scheme() const noexcept { return *scheme_; }

  /// Page holding linear element `linear` of any array.
  PageIndex page_of_element(std::int64_t linear) const noexcept {
    return page_of(linear, page_size_);
  }

  /// Owner PE of a page of `array`.
  PeId owner_of_page(const SaArray& array, PageIndex page) const;

  /// Owner PE of an element of `array`.
  PeId owner_of_element(const SaArray& array, std::int64_t linear) const;

  /// All pages of `array` owned by `pe`, ascending.
  std::vector<PageIndex> pages_owned_by(const SaArray& array, PeId pe) const;

  /// Number of elements of `array` that live on `pe` (accounts for the
  /// partial final page).
  std::int64_t elements_owned_by(const SaArray& array, PeId pe) const;

 private:
  std::unique_ptr<PartitionScheme> scheme_;
  std::int64_t page_size_;
  std::uint32_t num_pes_;
};

}  // namespace sap
