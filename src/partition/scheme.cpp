#include "partition/scheme.hpp"

#include "support/check.hpp"

namespace sap {

std::string to_string(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kModulo:
      return "modulo";
    case PartitionKind::kBlock:
      return "block";
    case PartitionKind::kBlockCyclic:
      return "block-cyclic";
  }
  return "?";
}

namespace {

class ModuloScheme final : public PartitionScheme {
 public:
  PeId owner(PageIndex page, std::int64_t /*page_count*/,
             std::uint32_t num_pes) const override {
    return static_cast<PeId>(page % num_pes);
  }
  PartitionKind kind() const noexcept override {
    return PartitionKind::kModulo;
  }
  std::string name() const override { return "modulo"; }
};

class BlockScheme final : public PartitionScheme {
 public:
  PeId owner(PageIndex page, std::int64_t page_count,
             std::uint32_t num_pes) const override {
    // Contiguous division: the first (page_count mod N) PEs get one page
    // more, mirroring how a compiler would divide an array evenly.
    const std::int64_t n = num_pes;
    const std::int64_t base = page_count / n;
    const std::int64_t extra = page_count % n;
    // PEs [0, extra) own (base+1) pages each, the rest own base pages.
    const std::int64_t pivot = extra * (base + 1);
    if (page < pivot) {
      return static_cast<PeId>(page / (base + 1));
    }
    if (base == 0) {
      // Fewer pages than PEs: pages beyond pivot do not exist, but be
      // total anyway for robustness.
      return static_cast<PeId>(page % n);
    }
    return static_cast<PeId>(extra + (page - pivot) / base);
  }
  PartitionKind kind() const noexcept override { return PartitionKind::kBlock; }
  std::string name() const override { return "block"; }
};

class BlockCyclicScheme final : public PartitionScheme {
 public:
  explicit BlockCyclicScheme(std::int64_t block_size) : block_(block_size) {
    SAP_CHECK(block_ >= 1, "block-cyclic block size must be >= 1");
  }
  PeId owner(PageIndex page, std::int64_t /*page_count*/,
             std::uint32_t num_pes) const override {
    return static_cast<PeId>((page / block_) % num_pes);
  }
  PartitionKind kind() const noexcept override {
    return PartitionKind::kBlockCyclic;
  }
  std::string name() const override {
    return "block-cyclic(b=" + std::to_string(block_) + ")";
  }

 private:
  std::int64_t block_;
};

}  // namespace

std::unique_ptr<PartitionScheme> make_partition_scheme(
    PartitionKind kind, std::int64_t block_size) {
  switch (kind) {
    case PartitionKind::kModulo:
      return std::make_unique<ModuloScheme>();
    case PartitionKind::kBlock:
      return std::make_unique<BlockScheme>();
    case PartitionKind::kBlockCyclic:
      return std::make_unique<BlockCyclicScheme>(block_size);
  }
  SAP_CHECK(false, "unknown partition kind");
  return nullptr;  // unreachable
}

}  // namespace sap
