#include "partition/partitioner.hpp"

#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

Partitioner::Partitioner(std::unique_ptr<PartitionScheme> scheme,
                         std::int64_t page_size, std::uint32_t num_pes)
    : default_scheme_(std::move(scheme)),
      page_size_(page_size),
      num_pes_(num_pes) {
  if (!default_scheme_) throw ConfigError("partitioner needs a scheme");
  if (page_size_ < 1) throw ConfigError("page size must be >= 1");
  if (num_pes_ < 1) throw ConfigError("at least one PE required");
  default_resolution_ = {this, default_scheme_.get()};
}

Partitioner::Partitioner(const MachineConfig& config)
    : Partitioner(make_partition_scheme(config.partition,
                                        config.block_cyclic_pages),
                  config.page_size, config.num_pes) {
  named_.reserve(config.per_array.size());
  for (const ArrayPartitionOverride& o : config.per_array) {
    if (o.array.empty()) {
      throw ConfigError("per_array override with an empty array name");
    }
    NamedScheme entry;
    entry.array = o.array;
    entry.scheme = make_partition_scheme(o.spec.partition,
                                         o.spec.block_cyclic_pages);
    named_.push_back(std::move(entry));
  }
  // Resolution pointers are taken after the vector reached its final size
  // (reserve above makes the push_backs non-reallocating, but do not rely
  // on that silently).
  for (NamedScheme& entry : named_) {
    entry.resolution = {this, entry.scheme.get()};
  }
}

const Partitioner::Resolution& Partitioner::resolve(
    const SaArray& array) const {
  const Resolution* r = &default_resolution_;
  for (const NamedScheme& entry : named_) {
    if (entry.array == array.name()) {
      r = &entry.resolution;
      break;
    }
  }
  array.set_partition_hint(r);
  return *r;
}

PeId Partitioner::owner_of_page(const SaArray& array, PageIndex page) const {
  const std::int64_t pages = page_count_for(array.element_count(), page_size_);
  SAP_DCHECK(page >= 0 && page < pages, "page index out of range");
  return scheme_for(array).owner(page, pages, num_pes_);
}

PeId Partitioner::owner_of_element(const SaArray& array,
                                   std::int64_t linear) const {
  return owner_of_page(array, page_of(linear, page_size_));
}

std::vector<PageIndex> Partitioner::pages_owned_by(const SaArray& array,
                                                   PeId pe) const {
  std::vector<PageIndex> owned;
  const PartitionScheme& scheme = scheme_for(array);
  const std::int64_t pages = page_count_for(array.element_count(), page_size_);
  for (PageIndex p = 0; p < pages; ++p) {
    if (scheme.owner(p, pages, num_pes_) == pe) owned.push_back(p);
  }
  return owned;
}

std::int64_t Partitioner::elements_owned_by(const SaArray& array,
                                            PeId pe) const {
  std::int64_t count = 0;
  const PartitionScheme& scheme = scheme_for(array);
  const std::int64_t pages = page_count_for(array.element_count(), page_size_);
  for (PageIndex p = 0; p < pages; ++p) {
    if (scheme.owner(p, pages, num_pes_) == pe) {
      count += page_valid_elements(p, array.element_count(), page_size_);
    }
  }
  return count;
}

}  // namespace sap
