#include "partition/partitioner.hpp"

#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

Partitioner::Partitioner(std::unique_ptr<PartitionScheme> scheme,
                         std::int64_t page_size, std::uint32_t num_pes)
    : scheme_(std::move(scheme)), page_size_(page_size), num_pes_(num_pes) {
  if (!scheme_) throw ConfigError("partitioner needs a scheme");
  if (page_size_ < 1) throw ConfigError("page size must be >= 1");
  if (num_pes_ < 1) throw ConfigError("at least one PE required");
}

PeId Partitioner::owner_of_page(const SaArray& array, PageIndex page) const {
  const std::int64_t pages = page_count_for(array.element_count(), page_size_);
  SAP_DCHECK(page >= 0 && page < pages, "page index out of range");
  return scheme_->owner(page, pages, num_pes_);
}

PeId Partitioner::owner_of_element(const SaArray& array,
                                   std::int64_t linear) const {
  return owner_of_page(array, page_of(linear, page_size_));
}

std::vector<PageIndex> Partitioner::pages_owned_by(const SaArray& array,
                                                   PeId pe) const {
  std::vector<PageIndex> owned;
  const std::int64_t pages = page_count_for(array.element_count(), page_size_);
  for (PageIndex p = 0; p < pages; ++p) {
    if (scheme_->owner(p, pages, num_pes_) == pe) owned.push_back(p);
  }
  return owned;
}

std::int64_t Partitioner::elements_owned_by(const SaArray& array,
                                            PeId pe) const {
  std::int64_t count = 0;
  const std::int64_t pages = page_count_for(array.element_count(), page_size_);
  for (PageIndex p = 0; p < pages; ++p) {
    if (scheme_->owner(p, pages, num_pes_) == pe) {
      count += page_valid_elements(p, array.element_count(), page_size_);
    }
  }
  return count;
}

}  // namespace sap
