#include "partition/owner_compute.hpp"

#include "support/check.hpp"

namespace sap {

std::vector<std::int64_t> owned_iterations_affine(
    const Partitioner& part, const SaArray& array, std::int64_t stride,
    std::int64_t offset, std::int64_t lo, std::int64_t hi, std::int64_t step,
    PeId pe) {
  SAP_CHECK(step >= 1, "loop step must be positive");
  std::vector<std::int64_t> owned;
  // The write index is affine in k, so ownership changes only at page
  // boundaries of the written array; still, a direct scan is exact for
  // every stride (including stride 0 and negative strides) and the
  // iteration spaces here are small.
  const auto& shape = array.shape();
  for (std::int64_t k = lo; k <= hi; k += step) {
    const std::int64_t linear = stride * k + offset - shape.dims()[0].lower;
    if (linear < 0 || linear >= array.element_count()) continue;
    if (part.owner_of_element(array, linear) == pe) owned.push_back(k);
  }
  return owned;
}

}  // namespace sap
