// Owner-computes index screening.
//
// §2: "Control partitioning will be done by assigning to each PE the
// responsibility for updating the elements in all the array pages it
// contains in its local memory" and §3: "This is achieved by screening the
// array indices so that the right hand side of the assignment is evaluated
// only for a given PE's subranges."
//
// The helper here answers, for one statement instance, *which* PE executes
// it — the owner of the element being written.  Both interpreters use it;
// the paper's "whether only the correct indices are generated, or if they
// all are generated and then screened is an implementation detail" is
// mirrored by the two entry points below.
#pragma once

#include <cstdint>
#include <vector>

#include "memory/sa_array.hpp"
#include "partition/partitioner.hpp"

namespace sap {

/// Screens a single write target: the executing PE for a statement
/// instance writing `array[linear]`.
inline PeId executing_pe(const Partitioner& part, const SaArray& array,
                         std::int64_t linear) {
  return part.owner_of_element(array, linear);
}

/// Enumerates, for a 1-D affine write index  i = stride*k + offset  over
/// k in [lo, hi] (inclusive, step>=1), the iterations k whose written
/// element is owned by `pe`.  This is the "generate only the correct
/// indices" fast path; the generic interpreters use the screen-everything
/// path instead.  Used by tests to prove both agree.
std::vector<std::int64_t> owned_iterations_affine(
    const Partitioner& part, const SaArray& array, std::int64_t stride,
    std::int64_t offset, std::int64_t lo, std::int64_t hi, std::int64_t step,
    PeId pe);

}  // namespace sap
