// Message accounting over a topology.
//
// Tracks, per message kind: counts, payload volume, hop totals, and
// per-directed-link load — enough to answer the abstract's claim that "the
// degradation in network performance due to multiprocessing is minimal"
// and to feed the A5 contention ablation.
//
// NetworkChannel is the accounting seam of the sharded dataflow runtime
// (DESIGN.md §9): the serial interpreters send straight into the shared
// Network, while each shard of the parallel runtime accounts into a private
// NetworkBuffer that is merged into the Network in PE-id order after the
// run.  Because every tally is a per-key sum of non-negative integers, the
// merged totals are identical to what the same message multiset sent
// directly would have produced — the determinism-by-ordered-merge argument.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "network/message.hpp"
#include "network/topology.hpp"

namespace sap {

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t control_messages = 0;  // requests / protocol traffic
  std::uint64_t data_messages = 0;     // page replies
  std::uint64_t payload_elements = 0;  // total elements shipped
  std::uint64_t hop_total = 0;

  double mean_hops() const noexcept {
    return messages == 0
               ? 0.0
               : static_cast<double>(hop_total) / static_cast<double>(messages);
  }

  NetworkStats& operator+=(const NetworkStats& other) noexcept {
    messages += other.messages;
    control_messages += other.control_messages;
    data_messages += other.data_messages;
    payload_elements += other.payload_elements;
    hop_total += other.hop_total;
    return *this;
  }

  friend bool operator==(const NetworkStats&, const NetworkStats&) = default;
};

/// Anything that can account a message: the shared Network, or a shard's
/// private NetworkBuffer.
class NetworkChannel {
 public:
  virtual ~NetworkChannel() = default;

  /// Accounts one message: counts, hops and each traversed link's load.
  virtual void send(const Message& message) = 0;
};

class NetworkBuffer;

class Network final : public NetworkChannel {
 public:
  explicit Network(std::unique_ptr<Topology> topology);

  const Topology& topology() const noexcept { return *topology_; }
  const NetworkStats& stats() const noexcept { return stats_; }

  void send(const Message& message) override;

  /// Adds a shard buffer's tallies.  Merging buffers in PE-id order yields
  /// a state byte-identical to sending the same messages directly.
  void absorb(const NetworkBuffer& buffer);

  /// Load (message count) of the most loaded directed link; 0 if none.
  std::uint64_t max_link_load() const noexcept;

  /// Mean load over links that carried at least one message.
  double mean_link_load() const noexcept;

  /// Ratio max/mean link load — the contention hot-spot factor.
  double contention_factor() const noexcept;

  /// Messages exchanged between each (src PE, dst PE) pair (diagnostics).
  const std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>&
  pair_traffic() const noexcept {
    return pair_traffic_;
  }

  void reset();

 private:
  std::unique_ptr<Topology> topology_;
  NetworkStats stats_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> link_load_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
      pair_traffic_;
};

/// Per-shard message accounting: same tallies as Network, accumulated
/// privately (no synchronization) and merged with Network::absorb.
class NetworkBuffer final : public NetworkChannel {
 public:
  explicit NetworkBuffer(const Topology& topology) : topology_(&topology) {}

  void send(const Message& message) override;

  const NetworkStats& stats() const noexcept { return stats_; }
  const std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>&
  link_load() const noexcept {
    return link_load_;
  }
  const std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>&
  pair_traffic() const noexcept {
    return pair_traffic_;
  }

  void reset();

 private:
  const Topology* topology_;
  NetworkStats stats_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> link_load_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
      pair_traffic_;
};

}  // namespace sap
