// Message accounting over a topology.
//
// Tracks, per message kind: counts, payload volume, hop totals, and
// per-directed-link load — enough to answer the abstract's claim that "the
// degradation in network performance due to multiprocessing is minimal"
// and to feed the A5 contention ablation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "network/message.hpp"
#include "network/topology.hpp"

namespace sap {

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t control_messages = 0;  // requests / protocol traffic
  std::uint64_t data_messages = 0;     // page replies
  std::uint64_t payload_elements = 0;  // total elements shipped
  std::uint64_t hop_total = 0;

  double mean_hops() const noexcept {
    return messages == 0
               ? 0.0
               : static_cast<double>(hop_total) / static_cast<double>(messages);
  }
};

class Network {
 public:
  explicit Network(std::unique_ptr<Topology> topology);

  const Topology& topology() const noexcept { return *topology_; }
  const NetworkStats& stats() const noexcept { return stats_; }

  /// Accounts one message: counts, hops and each traversed link's load.
  void send(const Message& message);

  /// Load (message count) of the most loaded directed link; 0 if none.
  std::uint64_t max_link_load() const noexcept;

  /// Mean load over links that carried at least one message.
  double mean_link_load() const noexcept;

  /// Ratio max/mean link load — the contention hot-spot factor.
  double contention_factor() const noexcept;

  /// Messages exchanged between each (src PE, dst PE) pair (diagnostics).
  const std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>&
  pair_traffic() const noexcept {
    return pair_traffic_;
  }

  void reset();

 private:
  std::unique_ptr<Topology> topology_;
  NetworkStats stats_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> link_load_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
      pair_traffic_;
};

}  // namespace sap
