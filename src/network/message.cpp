#include "network/message.hpp"

namespace sap {

std::string to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPageRequest:
      return "PAGE_REQ";
    case MessageKind::kPageReply:
      return "PAGE_REPLY";
    case MessageKind::kReinitRequest:
      return "REINIT_REQ";
    case MessageKind::kReinitGrant:
      return "REINIT_GRANT";
  }
  return "?";
}

}  // namespace sap
