// Message taxonomy of the abstract machine.
//
// §4: a remote read "must request the value from the responsible PE by
// sending a message … the page containing that item is sent back."
// §5: re-initialization requests gather at a host PE which then broadcasts.
// Each kind is counted separately so benches can report protocol cost.
#pragma once

#include <cstdint>
#include <string>

namespace sap {

enum class MessageKind : std::uint8_t {
  kPageRequest,    // reader -> owner: "send me page p of array a"
  kPageReply,      // owner -> reader: the page contents
  kReinitRequest,  // any PE -> host PE of an array (§5)
  kReinitGrant,    // host PE -> everyone: array may be reused (§5)
};

std::string to_string(MessageKind kind);

/// One network message.  `payload_elements` sizes PageReply messages (a
/// whole page travels); control messages carry zero elements.
struct Message {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  MessageKind kind = MessageKind::kPageRequest;
  std::int64_t payload_elements = 0;
};

}  // namespace sap
