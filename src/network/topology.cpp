#include "network/topology.hpp"

#include <bit>
#include <cmath>

#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kCrossbar:
      return "crossbar";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kMesh2D:
      return "mesh2d";
    case TopologyKind::kHypercube:
      return "hypercube";
  }
  return "?";
}

Topology::Topology(std::uint32_t num_pes) : num_pes_(num_pes) {
  if (num_pes == 0) throw ConfigError("topology needs at least one PE");
}

namespace {

class Crossbar final : public Topology {
 public:
  explicit Crossbar(std::uint32_t n) : Topology(n) {}
  TopologyKind kind() const noexcept override {
    return TopologyKind::kCrossbar;
  }
  std::string name() const override { return "crossbar"; }
  std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const override {
    return src == dst ? 0u : 1u;
  }
  std::vector<Link> route(std::uint32_t src,
                          std::uint32_t dst) const override {
    if (src == dst) return {};
    return {Link{src, dst}};
  }
};

class Ring final : public Topology {
 public:
  explicit Ring(std::uint32_t n) : Topology(n) {}
  TopologyKind kind() const noexcept override { return TopologyKind::kRing; }
  std::string name() const override { return "ring"; }
  std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const override {
    const std::uint32_t n = num_pes();
    const std::uint32_t fwd = (dst + n - src) % n;
    const std::uint32_t bwd = n - fwd == n ? 0 : n - fwd;
    return src == dst ? 0 : std::min(fwd, bwd);
  }
  std::vector<Link> route(std::uint32_t src,
                          std::uint32_t dst) const override {
    std::vector<Link> links;
    if (src == dst) return links;
    const std::uint32_t n = num_pes();
    const std::uint32_t fwd = (dst + n - src) % n;
    const bool go_forward = fwd <= n - fwd;
    std::uint32_t cur = src;
    while (cur != dst) {
      const std::uint32_t next = go_forward ? (cur + 1) % n : (cur + n - 1) % n;
      links.push_back(Link{cur, next});
      cur = next;
    }
    return links;
  }
};

class Mesh2D final : public Topology {
 public:
  explicit Mesh2D(std::uint32_t n) : Topology(n) {
    // Most-square factorization n = rows_ * cols_ with rows_ <= cols_.
    rows_ = 1;
    for (std::uint32_t r = static_cast<std::uint32_t>(std::sqrt(double(n)));
         r >= 1; --r) {
      if (n % r == 0) {
        rows_ = r;
        break;
      }
    }
    cols_ = n / rows_;
  }
  TopologyKind kind() const noexcept override { return TopologyKind::kMesh2D; }
  std::string name() const override {
    return "mesh2d(" + std::to_string(rows_) + "x" + std::to_string(cols_) +
           ")";
  }
  std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const override {
    const auto [sr, sc] = coords(src);
    const auto [dr, dc] = coords(dst);
    return static_cast<std::uint32_t>(
        std::abs(static_cast<int>(sr) - static_cast<int>(dr)) +
        std::abs(static_cast<int>(sc) - static_cast<int>(dc)));
  }
  std::vector<Link> route(std::uint32_t src,
                          std::uint32_t dst) const override {
    // XY routing: move along the row (column index) first, then the column.
    std::vector<Link> links;
    auto [r, c] = coords(src);
    const auto [dr, dc] = coords(dst);
    while (c != dc) {
      const std::uint32_t nc = c < dc ? c + 1 : c - 1;
      links.push_back(Link{id(r, c), id(r, nc)});
      c = nc;
    }
    while (r != dr) {
      const std::uint32_t nr = r < dr ? r + 1 : r - 1;
      links.push_back(Link{id(r, c), id(nr, c)});
      r = nr;
    }
    return links;
  }

 private:
  std::pair<std::uint32_t, std::uint32_t> coords(std::uint32_t pe) const {
    return {pe / cols_, pe % cols_};
  }
  std::uint32_t id(std::uint32_t r, std::uint32_t c) const {
    return r * cols_ + c;
  }
  std::uint32_t rows_ = 1;
  std::uint32_t cols_ = 1;
};

class Hypercube final : public Topology {
 public:
  explicit Hypercube(std::uint32_t n) : Topology(n) {
    if (!std::has_single_bit(n)) {
      throw ConfigError("hypercube requires a power-of-two PE count, got " +
                        std::to_string(n));
    }
  }
  TopologyKind kind() const noexcept override {
    return TopologyKind::kHypercube;
  }
  std::string name() const override { return "hypercube"; }
  std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const override {
    return static_cast<std::uint32_t>(std::popcount(src ^ dst));
  }
  std::vector<Link> route(std::uint32_t src,
                          std::uint32_t dst) const override {
    // E-cube: correct differing dimensions in ascending bit order.
    std::vector<Link> links;
    std::uint32_t cur = src;
    std::uint32_t diff = src ^ dst;
    for (std::uint32_t bit = 0; diff != 0; ++bit) {
      const std::uint32_t mask = 1u << bit;
      if (diff & mask) {
        const std::uint32_t next = cur ^ mask;
        links.push_back(Link{cur, next});
        cur = next;
        diff &= ~mask;
      }
    }
    return links;
  }
};

}  // namespace

std::unique_ptr<Topology> make_topology(TopologyKind kind,
                                        std::uint32_t num_pes) {
  switch (kind) {
    case TopologyKind::kCrossbar:
      return std::make_unique<Crossbar>(num_pes);
    case TopologyKind::kRing:
      return std::make_unique<Ring>(num_pes);
    case TopologyKind::kMesh2D:
      return std::make_unique<Mesh2D>(num_pes);
    case TopologyKind::kHypercube:
      return std::make_unique<Hypercube>(num_pes);
  }
  SAP_CHECK(false, "unknown topology kind");
  return nullptr;  // unreachable
}

}  // namespace sap
