// Interconnect topologies.
//
// The paper's abstract machine does not model the wire (§9 defers "network
// contention" to a "more sophisticated simulation"); we provide that
// extension: four classic loosely-coupled topologies (cf. Reed & Fujimoto,
// "Multicomputer Networks", the paper's [R&F87] reference) with hop counts
// and deterministic routes so the machine can attribute per-link load.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sap {

enum class TopologyKind {
  kCrossbar,   // ideal: 1 hop between distinct PEs
  kRing,       // bidirectional ring, shortest way around
  kMesh2D,     // near-square 2-D mesh, XY (dimension-order) routing
  kHypercube,  // e-cube routing, dimension ascending
};

std::string to_string(TopologyKind kind);

/// A directed link (from, to) in PE-id space.
struct Link {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  friend bool operator==(const Link&, const Link&) = default;
};

class Topology {
 public:
  virtual ~Topology() = default;

  std::uint32_t num_pes() const noexcept { return num_pes_; }
  virtual TopologyKind kind() const noexcept = 0;
  virtual std::string name() const = 0;

  /// Number of hops a message from src to dst traverses (0 when equal).
  virtual std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const = 0;

  /// Deterministic route as a sequence of directed links.
  virtual std::vector<Link> route(std::uint32_t src,
                                  std::uint32_t dst) const = 0;

 protected:
  explicit Topology(std::uint32_t num_pes);

 private:
  std::uint32_t num_pes_;
};

/// Factory.  Mesh2D picks the most-square factorization of num_pes;
/// Hypercube requires a power-of-two PE count.
std::unique_ptr<Topology> make_topology(TopologyKind kind,
                                        std::uint32_t num_pes);

}  // namespace sap
