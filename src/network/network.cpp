#include "network/network.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace sap {

namespace {

// Aggregate traffic counters (deterministic: the message multiset is a
// pure function of program + partition).  The per-pair breakdown is only
// fed while an exporter is active — it costs a registry lookup per send.
struct NetworkCounters {
  obs::Counter& messages = obs::counter("network/messages");
  obs::Counter& data = obs::counter("network/data_messages");
  obs::Counter& control = obs::counter("network/control_messages");
  obs::Counter& payload = obs::counter("network/payload_elements");
  obs::Counter& hops = obs::counter("network/hops");
};

NetworkCounters& network_counters() {
  static NetworkCounters counters;
  return counters;
}

void record_pair(std::uint32_t src, std::uint32_t dst) {
  const std::string name = "network/pair/" + std::to_string(src) + "->" +
                           std::to_string(dst) + "/messages";
  obs::counter(name).add(1);
}

/// One message's tallies against stats + link/pair maps — the single
/// definition both Network and NetworkBuffer account through.
template <typename LinkMap>
void account_message(const Message& message, const Topology& topology,
                     NetworkStats& stats, LinkMap& link_load,
                     LinkMap& pair_traffic) {
  SAP_DCHECK(message.src < topology.num_pes() &&
                 message.dst < topology.num_pes(),
             "message endpoint out of range");
  ++stats.messages;
  NetworkCounters& obs_counters = network_counters();
  obs_counters.messages.add(1);
  if (message.kind == MessageKind::kPageReply) {
    ++stats.data_messages;
    stats.payload_elements +=
        static_cast<std::uint64_t>(message.payload_elements);
    obs_counters.data.add(1);
    obs_counters.payload.add(
        static_cast<std::uint64_t>(message.payload_elements));
  } else {
    ++stats.control_messages;
    obs_counters.control.add(1);
  }
  const std::uint64_t hops = topology.hops(message.src, message.dst);
  stats.hop_total += hops;
  obs_counters.hops.add(hops);
  if (obs::collecting()) record_pair(message.src, message.dst);
  ++pair_traffic[{message.src, message.dst}];
  for (const Link& link : topology.route(message.src, message.dst)) {
    ++link_load[{link.from, link.to}];
  }
}

}  // namespace

Network::Network(std::unique_ptr<Topology> topology)
    : topology_(std::move(topology)) {
  SAP_CHECK(topology_ != nullptr, "network needs a topology");
}

void Network::send(const Message& message) {
  account_message(message, *topology_, stats_, link_load_, pair_traffic_);
}

void Network::absorb(const NetworkBuffer& buffer) {
  stats_ += buffer.stats();
  for (const auto& [link, load] : buffer.link_load()) {
    link_load_[link] += load;
  }
  for (const auto& [pair, count] : buffer.pair_traffic()) {
    pair_traffic_[pair] += count;
  }
}

std::uint64_t Network::max_link_load() const noexcept {
  std::uint64_t max_load = 0;
  for (const auto& [link, load] : link_load_) {
    max_load = std::max(max_load, load);
  }
  return max_load;
}

double Network::mean_link_load() const noexcept {
  if (link_load_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& [link, load] : link_load_) total += load;
  return static_cast<double>(total) / static_cast<double>(link_load_.size());
}

double Network::contention_factor() const noexcept {
  const double mean = mean_link_load();
  return mean == 0.0 ? 0.0 : static_cast<double>(max_link_load()) / mean;
}

void Network::reset() {
  stats_ = NetworkStats{};
  link_load_.clear();
  pair_traffic_.clear();
}

void NetworkBuffer::send(const Message& message) {
  account_message(message, *topology_, stats_, link_load_, pair_traffic_);
}

void NetworkBuffer::reset() {
  stats_ = NetworkStats{};
  link_load_.clear();
  pair_traffic_.clear();
}

}  // namespace sap
