#include "network/network.hpp"

#include "support/check.hpp"

namespace sap {

namespace {

/// One message's tallies against stats + link/pair maps — the single
/// definition both Network and NetworkBuffer account through.
template <typename LinkMap>
void account_message(const Message& message, const Topology& topology,
                     NetworkStats& stats, LinkMap& link_load,
                     LinkMap& pair_traffic) {
  SAP_DCHECK(message.src < topology.num_pes() &&
                 message.dst < topology.num_pes(),
             "message endpoint out of range");
  ++stats.messages;
  if (message.kind == MessageKind::kPageReply) {
    ++stats.data_messages;
    stats.payload_elements +=
        static_cast<std::uint64_t>(message.payload_elements);
  } else {
    ++stats.control_messages;
  }
  stats.hop_total += topology.hops(message.src, message.dst);
  ++pair_traffic[{message.src, message.dst}];
  for (const Link& link : topology.route(message.src, message.dst)) {
    ++link_load[{link.from, link.to}];
  }
}

}  // namespace

Network::Network(std::unique_ptr<Topology> topology)
    : topology_(std::move(topology)) {
  SAP_CHECK(topology_ != nullptr, "network needs a topology");
}

void Network::send(const Message& message) {
  account_message(message, *topology_, stats_, link_load_, pair_traffic_);
}

void Network::absorb(const NetworkBuffer& buffer) {
  stats_ += buffer.stats();
  for (const auto& [link, load] : buffer.link_load()) {
    link_load_[link] += load;
  }
  for (const auto& [pair, count] : buffer.pair_traffic()) {
    pair_traffic_[pair] += count;
  }
}

std::uint64_t Network::max_link_load() const noexcept {
  std::uint64_t max_load = 0;
  for (const auto& [link, load] : link_load_) {
    max_load = std::max(max_load, load);
  }
  return max_load;
}

double Network::mean_link_load() const noexcept {
  if (link_load_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& [link, load] : link_load_) total += load;
  return static_cast<double>(total) / static_cast<double>(link_load_.size());
}

double Network::contention_factor() const noexcept {
  const double mean = mean_link_load();
  return mean == 0.0 ? 0.0 : static_cast<double>(max_link_load()) / mean;
}

void Network::reset() {
  stats_ = NetworkStats{};
  link_load_.clear();
  pair_traffic_.clear();
}

void NetworkBuffer::send(const Message& message) {
  account_message(message, *topology_, stats_, link_load_, pair_traffic_);
}

void NetworkBuffer::reset() {
  stats_ = NetworkStats{};
  link_load_.clear();
  pair_traffic_.clear();
}

}  // namespace sap
