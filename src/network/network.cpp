#include "network/network.hpp"

#include "support/check.hpp"

namespace sap {

Network::Network(std::unique_ptr<Topology> topology)
    : topology_(std::move(topology)) {
  SAP_CHECK(topology_ != nullptr, "network needs a topology");
}

void Network::send(const Message& message) {
  SAP_DCHECK(message.src < topology_->num_pes() &&
                 message.dst < topology_->num_pes(),
             "message endpoint out of range");
  ++stats_.messages;
  if (message.kind == MessageKind::kPageReply) {
    ++stats_.data_messages;
    stats_.payload_elements +=
        static_cast<std::uint64_t>(message.payload_elements);
  } else {
    ++stats_.control_messages;
  }
  stats_.hop_total += topology_->hops(message.src, message.dst);
  ++pair_traffic_[{message.src, message.dst}];
  for (const Link& link : topology_->route(message.src, message.dst)) {
    ++link_load_[{link.from, link.to}];
  }
}

std::uint64_t Network::max_link_load() const noexcept {
  std::uint64_t max_load = 0;
  for (const auto& [link, load] : link_load_) {
    max_load = std::max(max_load, load);
  }
  return max_load;
}

double Network::mean_link_load() const noexcept {
  if (link_load_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& [link, load] : link_load_) total += load;
  return static_cast<double>(total) / static_cast<double>(link_load_.size());
}

double Network::contention_factor() const noexcept {
  const double mean = mean_link_load();
  return mean == 0.0 ? 0.0 : static_cast<double>(max_link_load()) / mean;
}

void Network::reset() {
  stats_ = NetworkStats{};
  link_load_.clear();
  pair_traffic_.clear();
}

}  // namespace sap
