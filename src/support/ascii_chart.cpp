#include "support/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <sstream>

#include "support/check.hpp"

namespace sap {

namespace {
constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
constexpr int kGlyphCount = 8;
}  // namespace

AsciiChart::AsciiChart(std::string title, std::string x_label,
                       std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

void AsciiChart::add_series(ChartSeries series) {
  series_.push_back(std::move(series));
}

std::string AsciiChart::render(int height) const {
  SAP_CHECK(height >= 4, "chart height too small");
  std::ostringstream os;
  os << title_ << "  (y: " << y_label_ << ", x: " << x_label_ << ")\n";
  if (series_.empty()) {
    os << "  <no data>\n";
    return os.str();
  }

  // Collect the distinct x values; columns are rank-spaced.
  std::map<double, int> x_rank;
  double y_max = 0.0;
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      x_rank.emplace(x, 0);
      y_max = std::max(y_max, y);
    }
  }
  int rank = 0;
  for (auto& [x, r] : x_rank) r = rank++;
  if (y_max <= 0.0) y_max = 1.0;

  const int col_width = 6;
  const int width = static_cast<int>(x_rank.size()) * col_width;
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));

  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char glyph = kGlyphs[si % kGlyphCount];
    for (const auto& [x, y] : series_[si].points) {
      const int col = x_rank.at(x) * col_width + col_width / 2;
      int row = height - 1 -
                static_cast<int>(std::lround((y / y_max) * (height - 1)));
      row = std::clamp(row, 0, height - 1);
      auto& cell = grid[static_cast<std::size_t>(row)]
                       [static_cast<std::size_t>(col)];
      // A collision between series is rendered as '=' to flag overlap.
      cell = (cell == ' ' || cell == glyph) ? glyph : '=';
    }
  }

  for (int r = 0; r < height; ++r) {
    const double y_tick =
        y_max * static_cast<double>(height - 1 - r) / (height - 1);
    os << std::setw(8) << std::fixed << std::setprecision(2) << y_tick
       << " |" << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(8, ' ') << " +" << std::string(static_cast<std::size_t>(width), '-')
     << '\n'
     << std::string(10, ' ');
  for (const auto& [x, r] : x_rank) {
    std::ostringstream xs;
    xs << x;
    std::string lbl = xs.str();
    if (static_cast<int>(lbl.size()) > col_width) lbl.resize(static_cast<std::size_t>(col_width));
    os << std::left << std::setw(col_width) << lbl;
  }
  os << '\n';
  for (std::size_t si = 0; si < series_.size(); ++si) {
    os << "    " << kGlyphs[si % kGlyphCount] << " = " << series_[si].label
       << '\n';
  }
  return os.str();
}

}  // namespace sap
