#include "support/thread_pool.hpp"

#include <stdexcept>
#include <string>

#include "support/error.hpp"
#include "support/parse.hpp"

namespace sap {

unsigned parse_worker_count(const char* value) {
  if (value == nullptr) return 0;
  const std::string_view text(value);
  constexpr std::int64_t kMaxWorkers = 4096;  // far beyond any sane machine
  if (const auto parsed = parse_strict_int(text, 1, kMaxWorkers)) {
    return static_cast<unsigned>(*parsed);
  }
  if (parse_strict_int(text, INT64_MIN, 0)) {
    throw ConfigError("worker count must be >= 1, got '" + std::string(text) +
                      "'");
  }
  // Covers garbage and any oversize value, including ones beyond int64.
  throw ConfigError("worker count '" + std::string(text) +
                    "' is not a positive integer <= " +
                    std::to_string(kMaxWorkers));
}

ThreadPool::ThreadPool(unsigned workers) {
  unsigned n = workers;
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(job));
  }
  ready_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> job;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    job = std::move(queue_.front());
    queue_.pop_front();
  }
  job();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace sap
