#include "support/thread_pool.hpp"

#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/parse.hpp"

namespace sap {

namespace {

// Pool activity is scheduler-dependent by definition (which worker ran a
// task, how often the queue went empty).
obs::Counter& submitted_counter() {
  static obs::Counter& c =
      obs::counter("pool/submitted", obs::Determinism::kScheduler);
  return c;
}

obs::Counter& executed_counter() {
  static obs::Counter& c =
      obs::counter("pool/executed", obs::Determinism::kScheduler);
  return c;
}

obs::Counter& idle_wait_counter() {
  static obs::Counter& c =
      obs::counter("pool/idle_waits", obs::Determinism::kScheduler);
  return c;
}

void run_job(std::function<void()>& job) {
  executed_counter().add(1);
  const obs::Span span("pool", "task");
  job();
}

}  // namespace

unsigned parse_worker_count(const char* value) {
  if (value == nullptr) return 0;
  const std::string_view text(value);
  constexpr std::int64_t kMaxWorkers = 4096;  // far beyond any sane machine
  if (const auto parsed = parse_strict_int(text, 1, kMaxWorkers)) {
    return static_cast<unsigned>(*parsed);
  }
  if (parse_strict_int(text, INT64_MIN, 0)) {
    throw ConfigError("worker count must be >= 1, got '" + std::string(text) +
                      "'");
  }
  // Covers garbage and any oversize value, including ones beyond int64.
  throw ConfigError("worker count '" + std::string(text) +
                    "' is not a positive integer <= " +
                    std::to_string(kMaxWorkers));
}

ThreadPool::ThreadPool(unsigned workers) {
  unsigned n = workers;
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(job));
  }
  submitted_counter().add(1);
  ready_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> job;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    job = std::move(queue_.front());
    queue_.pop_front();
  }
  run_job(job);
  return true;
}

void ThreadPool::worker_loop() {
  obs::set_thread_name("pool-worker");
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (queue_.empty() && !stopping_) idle_wait_counter().add(1);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    run_job(job);
  }
}

}  // namespace sap
