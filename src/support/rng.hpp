// Deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible across runs and platforms (tests
// and the EXPERIMENTS.md records depend on it), so we carry our own
// SplitMix64 instead of std::mt19937's unspecified seeding behaviours.
#pragma once

#include <cstdint>
#include <vector>

namespace sap {

/// SplitMix64: tiny, fast, high-quality 64-bit generator.
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept
      : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// Deterministic Fisher–Yates permutation of {0, 1, ..., n-1}.
std::vector<std::int64_t> random_permutation(std::int64_t n,
                                             std::uint64_t seed);

}  // namespace sap
