// Fixed-width text tables for bench/report output.
//
// The paper's results are tables and line charts; every bench binary emits
// its rows through this class so the output is uniform and diffable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sap {

/// Accumulates rows of strings and renders them with aligned columns.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` decimal places.
  static std::string num(double value, int precision = 2);

  /// Convenience: formats a percentage ("12.34%").
  static std::string pct(double fraction, int precision = 2);

  std::size_t row_count() const noexcept { return rows_.size(); }

  const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Renders the table, headers underlined, columns padded to fit.
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sap
