#include "support/rng.hpp"

#include "support/check.hpp"

namespace sap {

std::uint64_t SplitMix64::next_below(std::uint64_t bound) noexcept {
  // Rejection sampling to avoid modulo bias; bound is tiny relative to
  // 2^64 in all our uses, so the loop almost never iterates.
  const std::uint64_t limit = ~0ull - (~0ull % bound);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % bound;
}

std::vector<std::int64_t> random_permutation(std::int64_t n,
                                             std::uint64_t seed) {
  SAP_CHECK(n >= 0, "permutation size must be non-negative");
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  SplitMix64 rng(seed);
  for (std::int64_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(i + 1)));
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

}  // namespace sap
