// Lightweight precondition / invariant checking.
//
// SAP_CHECK is always on (these guard public API boundaries and simulation
// invariants whose violation would silently corrupt measurements);
// SAP_DCHECK compiles out in release builds for hot inner loops.
#pragma once

#include <sstream>
#include <string>

#include "support/error.hpp"

namespace sap::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace sap::detail

#define SAP_CHECK(expr, msg)                                              \
  do {                                                                    \
    if (!(expr)) ::sap::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define SAP_DCHECK(expr, msg) \
  do {                        \
  } while (false)
#else
#define SAP_DCHECK(expr, msg) SAP_CHECK(expr, msg)
#endif
