// Error taxonomy for the sapart library.
//
// Every failure the library can raise derives from `sap::Error`, so callers
// may catch the whole family or a specific condition.  Runtime violations of
// the single-assignment discipline get their own types because the paper
// treats them as *machine traps* (a second write to a cell "results in a
// runtime error", §3), and tests assert on them precisely.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sap {

/// Root of the sapart error hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A second write reached a single-assignment cell (§3: hardware trap).
class DoubleWriteError : public Error {
 public:
  DoubleWriteError(std::string array, std::int64_t linear_index);

  const std::string& array_name() const noexcept { return array_; }
  std::int64_t linear_index() const noexcept { return index_; }

 private:
  std::string array_;
  std::int64_t index_;
};

/// A read of an undefined cell in a context that cannot defer
/// (e.g. the sequential reference interpreter, or scalar evaluation).
class UndefinedReadError : public Error {
 public:
  UndefinedReadError(std::string array, std::int64_t linear_index);

  const std::string& array_name() const noexcept { return array_; }
  std::int64_t linear_index() const noexcept { return index_; }

 private:
  std::string array_;
  std::int64_t index_;
};

/// The dataflow machine reached global quiescence with suspended PEs:
/// the program has a read-before-write in sequential order (not legal SA).
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// Array index outside its declared bounds.
class BoundsError : public Error {
 public:
  explicit BoundsError(const std::string& what) : Error(what) {}
};

/// Invalid machine/simulation configuration (zero PEs, page size 0, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Lexical or syntactic error in DSL source; carries line/column.
class ParseError : public Error {
 public:
  ParseError(std::string message, int line, int column);

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Semantic error (undeclared identifier, rank mismatch, ...).
class SemanticError : public Error {
 public:
  explicit SemanticError(const std::string& what) : Error(what) {}
};

}  // namespace sap
