// ASCII line charts.
//
// Figures 1-4 of the paper are "% remote reads vs number of PEs" line
// charts with four series.  Bench binaries render the same shape in the
// terminal so a reader can eyeball the reproduction without plotting.
#pragma once

#include <string>
#include <vector>

namespace sap {

/// One chart series: a label plus (x, y) points sorted by x.
struct ChartSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;
};

/// Renders multiple series onto a character grid.  X positions are
/// mapped by *rank* (the paper's PE axis is logarithmic: 1,2,4,...,64),
/// so each distinct x value becomes one column group.
class AsciiChart {
 public:
  AsciiChart(std::string title, std::string x_label, std::string y_label);

  void add_series(ChartSeries series);

  /// Renders a `height`-row chart; each series uses its own glyph and a
  /// legend is appended.
  std::string render(int height = 16) const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<ChartSeries> series_;
};

}  // namespace sap
