#include "support/csv.hpp"

namespace sap {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace sap
