// Strict integer parsing shared by CLI flags and environment knobs.
//
// One definition of "a plain decimal integer": no leading whitespace, no
// '+', nothing trailing, and inside the caller's range.  Both the
// SAPART_WORKERS parser and the advise_tool options build on this so the
// two contracts cannot drift apart.
#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <string_view>

namespace sap {

inline std::optional<std::int64_t> parse_strict_int(std::string_view text,
                                                    std::int64_t min,
                                                    std::int64_t max) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value < min ||
      value > max) {
    return std::nullopt;
  }
  return value;
}

}  // namespace sap
