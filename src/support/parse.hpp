// Strict integer parsing shared by CLI flags and environment knobs.
//
// One definition of "a plain decimal integer": no leading whitespace, no
// '+', nothing trailing, and inside the caller's range.  Both the
// SAPART_WORKERS parser and the advise_tool options build on this so the
// two contracts cannot drift apart.
#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "support/error.hpp"

namespace sap {

inline std::optional<std::int64_t> parse_strict_int(std::string_view text,
                                                    std::int64_t min,
                                                    std::int64_t max) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value < min ||
      value > max) {
    return std::nullopt;
  }
  return value;
}

/// Parses an output-path knob (the SAPART_TRACE / SAPART_METRICS
/// convention, mirroring parse_worker_count's contract).  nullptr — knob
/// unset — returns nullopt.  A set value must look like a deliberate file
/// path: empty strings, values wrapped in whitespace, and values with
/// control characters throw ConfigError naming the knob and the problem,
/// so `SAPART_TRACE= ./run` fails loudly instead of silently writing
/// nowhere (or to a surprising filename).  Interior spaces are legal.
inline std::optional<std::string> parse_output_path(const char* value,
                                                    std::string_view knob) {
  if (value == nullptr) return std::nullopt;
  const std::string_view text(value);
  if (text.empty()) {
    throw ConfigError(std::string(knob) +
                      " is set but empty; it must name a file path");
  }
  const auto is_space = [](char c) { return c == ' ' || c == '\t'; };
  if (is_space(text.front()) || is_space(text.back())) {
    throw ConfigError(std::string(knob) + " value '" + std::string(text) +
                      "' has leading or trailing whitespace");
  }
  for (const char c : text) {
    if (static_cast<unsigned char>(c) < 0x20) {
      throw ConfigError(std::string(knob) +
                        " value contains a control character");
    }
  }
  return std::string(text);
}

}  // namespace sap
