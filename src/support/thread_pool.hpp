// Fixed-size worker thread pool and the parallel_for_each helper.
//
// The pool is the repo's one concurrency primitive: sweeps (core/sweep.hpp)
// fan independent Simulator::run invocations across it, and every future
// parallel subsystem is expected to reuse it rather than spawn ad-hoc
// threads.  Determinism is preserved by construction: parallel_for_each
// hands each index its own output slot, so results are order-stable no
// matter how the scheduler interleaves the workers.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sap {

/// Parses a worker-count override (the SAPART_WORKERS convention).
/// nullptr — no override — returns 0, which ThreadPool interprets as
/// "one worker per hardware thread".  Anything else must be a plain
/// positive decimal; zero, negative, trailing garbage, or out-of-range
/// values throw ConfigError with a message naming the bad input, so a
/// typo fails loudly instead of silently picking some fallback size.
unsigned parse_worker_count(const char* value);

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means std::thread::hardware_concurrency()
  /// (itself clamped to at least 1).
  explicit ThreadPool(unsigned workers = 0);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task for execution on some worker.  The returned future
  /// carries the task's result, or rethrows whatever it threw.
  template <typename Fn, typename R = std::invoke_result_t<Fn&>>
  std::future<R> submit(Fn fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Pops and runs one queued task on the calling thread, if any.  Lets a
  /// thread that is waiting on pool work help instead of blocking — the
  /// mechanism that makes nested parallel_for_each on one pool safe.
  bool try_run_one();

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [0, count), fanning across the pool's workers
/// and blocking until all invocations finish.  The calling thread
/// participates, and while waiting it keeps running queued pool tasks, so
/// the call makes progress even when every worker is busy — including when
/// fn itself calls parallel_for_each on the same pool (nested use).
/// Indices are handed out dynamically; callers that write into
/// per-index output slots get results independent of scheduling order.
/// The first exception thrown by any invocation is rethrown here after the
/// remaining indices have been drained.
template <typename Fn>
void parallel_for_each(ThreadPool& pool, std::size_t count, Fn&& fn) {
  if (count == 0) return;

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;

  const auto drain = [&] {
    for (std::size_t i = next.fetch_add(1); i < count;
         i = next.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };

  // Help instead of blocking: run queued tasks until this drain job is
  // done.  Every worker blocked here still empties the queue, so nested
  // parallel_for_each calls on one pool cannot deadlock.  The bounded
  // wait keeps the tail cheap once the queue is empty (no busy-spin
  // while the slowest in-flight task finishes).
  const auto help_until_done = [&pool](std::future<void>& f) {
    while (f.wait_for(std::chrono::milliseconds(1)) !=
           std::future_status::ready) {
      while (pool.try_run_one()) {
      }
    }
  };

  // One drain job per worker (capped at count); the caller runs one too.
  const std::size_t jobs = std::min<std::size_t>(pool.size(), count - 1);
  std::vector<std::future<void>> pending;
  pending.reserve(jobs);
  try {
    for (std::size_t j = 0; j < jobs; ++j) {
      pending.push_back(pool.submit(drain));
    }
  } catch (...) {
    // Enqueued drain copies reference this stack frame: cancel the
    // remaining indices and wait them out before unwinding.
    next.store(count);
    for (auto& f : pending) help_until_done(f);
    throw;
  }
  drain();
  for (auto& f : pending) {
    help_until_done(f);
    f.get();
  }

  if (error) std::rethrow_exception(error);
}

}  // namespace sap
