// Minimal RFC-4180-ish CSV emission for bench results.
//
// Bench binaries print human tables to stdout and, when given a path,
// also dump machine-readable CSV so figures can be re-plotted.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sap {

/// Streams rows to an std::ostream, quoting cells only when required.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& cells);

  /// Escapes one cell per RFC 4180 (quotes doubled, wrap when needed).
  static std::string escape(const std::string& cell);

 private:
  std::ostream& out_;
};

}  // namespace sap
