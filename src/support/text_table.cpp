#include "support/text_table.hpp"

#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace sap {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SAP_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  SAP_CHECK(cells.size() == headers_.size(),
            "row width does not match header count");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-');
    if (c + 1 < headers_.size()) os << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace sap
