#include "support/error.hpp"

namespace sap {

DoubleWriteError::DoubleWriteError(std::string array, std::int64_t linear_index)
    : Error("single-assignment violation: second write to " + array + "[" +
            std::to_string(linear_index) + "]"),
      array_(std::move(array)),
      index_(linear_index) {}

UndefinedReadError::UndefinedReadError(std::string array,
                                       std::int64_t linear_index)
    : Error("read of undefined cell " + array + "[" +
            std::to_string(linear_index) + "]"),
      array_(std::move(array)),
      index_(linear_index) {}

ParseError::ParseError(std::string message, int line, int column)
    : Error("parse error at " + std::to_string(line) + ":" +
            std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

}  // namespace sap
