#include "stats/series.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace sap {

double SweepSeries::y_at(double x) const {
  for (const auto& p : points) {
    if (p.x == x) return p.y;
  }
  throw Error("series '" + label + "' has no point at x=" +
              std::to_string(x));
}

double SweepSeries::max_y() const noexcept {
  double m = 0.0;
  for (const auto& p : points) m = std::max(m, p.y);
  return m;
}

double SweepSeries::min_y() const noexcept {
  if (points.empty()) return 0.0;
  double m = points.front().y;
  for (const auto& p : points) m = std::min(m, p.y);
  return m;
}

}  // namespace sap
