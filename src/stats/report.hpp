// Rendering of sweep series and results as tables, charts and CSV.
//
// Every bench binary funnels its output through these helpers so that the
// reproduced figures have a uniform, diffable format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "stats/series.hpp"
#include "stats/sim_result.hpp"

namespace sap {

/// Renders series as a table: one row per x, one column per series
/// (y as a percentage when `as_percent`).
std::string series_table(const std::vector<SweepSeries>& series,
                         const std::string& x_header, bool as_percent);

/// Renders series as an ASCII line chart titled `title`.
std::string series_chart(const std::vector<SweepSeries>& series,
                         const std::string& title, const std::string& x_label,
                         const std::string& y_label);

/// CSV with header "x,<label1>,<label2>,..." to the stream.
void series_csv(std::ostream& out, const std::vector<SweepSeries>& series,
                const std::string& x_header);

/// Per-PE access distribution table of one result (Figure 5's data).
std::string per_pe_table(const SimulationResult& result);

}  // namespace sap
