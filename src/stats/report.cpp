#include "stats/report.hpp"

#include <map>
#include <set>

#include "support/ascii_chart.hpp"
#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/text_table.hpp"

namespace sap {

namespace {

std::set<double> all_x(const std::vector<SweepSeries>& series) {
  std::set<double> xs;
  for (const auto& s : series) {
    for (const auto& p : s.points) xs.insert(p.x);
  }
  return xs;
}

std::string format_x(double x) {
  // PE counts and page sizes are integers; print them as such.
  if (x == static_cast<double>(static_cast<long long>(x))) {
    return std::to_string(static_cast<long long>(x));
  }
  return TextTable::num(x, 2);
}

}  // namespace

std::string series_table(const std::vector<SweepSeries>& series,
                         const std::string& x_header, bool as_percent) {
  std::vector<std::string> headers{x_header};
  for (const auto& s : series) headers.push_back(s.label);
  TextTable table(std::move(headers));
  for (double x : all_x(series)) {
    std::vector<std::string> row{format_x(x)};
    for (const auto& s : series) {
      std::string cell = "-";
      for (const auto& p : s.points) {
        if (p.x == x) {
          cell = as_percent ? TextTable::pct(p.y) : TextTable::num(p.y, 4);
          break;
        }
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  return table.to_string();
}

std::string series_chart(const std::vector<SweepSeries>& series,
                         const std::string& title, const std::string& x_label,
                         const std::string& y_label) {
  AsciiChart chart(title, x_label, y_label);
  for (const auto& s : series) {
    ChartSeries cs;
    cs.label = s.label;
    for (const auto& p : s.points) cs.points.emplace_back(p.x, p.y);
    chart.add_series(std::move(cs));
  }
  return chart.render();
}

void series_csv(std::ostream& out, const std::vector<SweepSeries>& series,
                const std::string& x_header) {
  CsvWriter csv(out);
  std::vector<std::string> header{x_header};
  for (const auto& s : series) header.push_back(s.label);
  csv.write_row(header);
  for (double x : all_x(series)) {
    std::vector<std::string> row{format_x(x)};
    for (const auto& s : series) {
      std::string cell;
      for (const auto& p : s.points) {
        if (p.x == x) {
          cell = TextTable::num(p.y, 6);
          break;
        }
      }
      row.push_back(std::move(cell));
    }
    csv.write_row(row);
  }
}

std::string per_pe_table(const SimulationResult& result) {
  TextTable table({"PE", "writes", "local", "cached", "remote", "%remote"});
  for (std::size_t pe = 0; pe < result.per_pe.size(); ++pe) {
    const auto& c = result.per_pe[pe];
    table.add_row({std::to_string(pe), std::to_string(c.writes),
                   std::to_string(c.local_reads),
                   std::to_string(c.cached_reads),
                   std::to_string(c.remote_reads),
                   TextTable::pct(c.remote_read_fraction())});
  }
  return table.to_string();
}

}  // namespace sap
