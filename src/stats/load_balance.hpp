// Load-balance metrics over per-PE quantities.
//
// §7.2 measures balance as "the number of remote and local reads per PE";
// Figure 5 shows both are nearly flat across 64 PEs.  We summarize a
// per-PE vector with mean / min / max / stddev, the coefficient of
// variation and the imbalance factor max/mean (1.0 = perfectly balanced).
#pragma once

#include <cstdint>
#include <vector>

namespace sap {

struct LoadBalance {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;

  /// stddev / mean; 0 when mean == 0.
  double coefficient_of_variation() const noexcept {
    return mean == 0.0 ? 0.0 : stddev / mean;
  }

  /// max / mean; 1.0 means perfectly even. 0 when mean == 0.
  double imbalance() const noexcept {
    return mean == 0.0 ? 0.0 : max / mean;
  }
};

LoadBalance summarize_load(const std::vector<std::uint64_t>& per_pe);

}  // namespace sap
