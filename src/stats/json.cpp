#include "stats/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/check.hpp"

namespace sap {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ << ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_ << '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SAP_CHECK(!needs_comma_.empty() && !after_key_, "unbalanced end_object");
  needs_comma_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_ << '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SAP_CHECK(!needs_comma_.empty() && !after_key_, "unbalanced end_array");
  needs_comma_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  SAP_CHECK(!after_key_, "key after key");
  separate();
  out_ << '"' << json_escape(name) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separate();
  out_ << '"' << json_escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  separate();
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), number);
  SAP_CHECK(ec == std::errc(), "double formatting failed");
  out_.write(buf, ptr - buf);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  separate();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  separate();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  separate();
  out_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  out_ << "null";
  return *this;
}

void series_json(std::ostream& out, std::string_view artifact,
                 const std::vector<SweepSeries>& series,
                 std::string_view x_header) {
  JsonWriter w(out);
  w.begin_object();
  w.key("artifact").value(artifact);
  w.key("x").value(x_header);
  w.key("series").begin_array();
  for (const SweepSeries& s : series) {
    w.begin_object();
    w.key("label").value(s.label);
    w.key("points").begin_array();
    for (const SweepPoint& p : s.points) {
      w.begin_object();
      w.key("x").value(p.x);
      w.key("y").value(p.y);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

void table_json(std::ostream& out, std::string_view artifact,
                const std::vector<std::string>& columns,
                const std::vector<std::vector<std::string>>& rows) {
  JsonWriter w(out);
  w.begin_object();
  w.key("artifact").value(artifact);
  w.key("columns").begin_array();
  for (const std::string& c : columns) w.value(c);
  w.end_array();
  w.key("rows").begin_array();
  for (const auto& row : rows) {
    w.begin_array();
    for (const std::string& cell : row) w.value(cell);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

}  // namespace sap
