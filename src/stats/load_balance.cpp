#include "stats/load_balance.hpp"

#include <algorithm>
#include <cmath>

namespace sap {

LoadBalance summarize_load(const std::vector<std::uint64_t>& per_pe) {
  LoadBalance lb;
  if (per_pe.empty()) return lb;
  double sum = 0.0;
  double min_v = static_cast<double>(per_pe.front());
  double max_v = min_v;
  for (std::uint64_t v : per_pe) {
    const double d = static_cast<double>(v);
    sum += d;
    min_v = std::min(min_v, d);
    max_v = std::max(max_v, d);
  }
  const double n = static_cast<double>(per_pe.size());
  lb.mean = sum / n;
  lb.min = min_v;
  lb.max = max_v;
  double var = 0.0;
  for (std::uint64_t v : per_pe) {
    const double d = static_cast<double>(v) - lb.mean;
    var += d * d;
  }
  lb.stddev = std::sqrt(var / n);
  return lb;
}

}  // namespace sap
