// Result of simulating one program on one machine configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/page_cache.hpp"
#include "network/network.hpp"
#include "stats/counters.hpp"
#include "stats/load_balance.hpp"

namespace sap {

struct SimulationResult {
  std::string program_name;
  std::uint32_t num_pes = 1;
  std::int64_t page_size = 0;
  std::int64_t cache_elements = 0;

  /// Index = PE id.
  std::vector<AccessCounters> per_pe;
  AccessCounters totals;

  CacheStats cache_totals;
  NetworkStats network;
  std::uint64_t max_link_load = 0;
  double contention_factor = 0.0;

  /// Protocol messages issued by the §5 re-init coordinator, if used.
  std::uint64_t reinit_messages = 0;

  /// The paper's "% of Reads Remote" over all PEs, as a fraction.
  double remote_read_fraction() const noexcept {
    return totals.remote_read_fraction();
  }

  std::vector<std::uint64_t> per_pe_remote_reads() const;
  std::vector<std::uint64_t> per_pe_local_reads() const;
  std::vector<std::uint64_t> per_pe_writes() const;

  LoadBalance remote_read_balance() const {
    return summarize_load(per_pe_remote_reads());
  }
  LoadBalance local_read_balance() const {
    return summarize_load(per_pe_local_reads());
  }
  LoadBalance write_balance() const { return summarize_load(per_pe_writes()); }

  /// One-line human summary used by examples and diagnostics.
  std::string summary() const;
};

}  // namespace sap
