#include "stats/sim_result.hpp"

#include <sstream>

namespace sap {

std::vector<std::uint64_t> SimulationResult::per_pe_remote_reads() const {
  std::vector<std::uint64_t> out(per_pe.size());
  for (std::size_t i = 0; i < per_pe.size(); ++i) {
    out[i] = per_pe[i].remote_reads;
  }
  return out;
}

std::vector<std::uint64_t> SimulationResult::per_pe_local_reads() const {
  std::vector<std::uint64_t> out(per_pe.size());
  for (std::size_t i = 0; i < per_pe.size(); ++i) {
    out[i] = per_pe[i].local_reads;
  }
  return out;
}

std::vector<std::uint64_t> SimulationResult::per_pe_writes() const {
  std::vector<std::uint64_t> out(per_pe.size());
  for (std::size_t i = 0; i < per_pe.size(); ++i) {
    out[i] = per_pe[i].writes;
  }
  return out;
}

std::string SimulationResult::summary() const {
  std::ostringstream os;
  os << program_name << " on " << num_pes << " PEs, page size " << page_size
     << ", cache " << cache_elements << " elements: " << totals.writes
     << " writes, " << totals.local_reads << " local / "
     << totals.cached_reads << " cached / " << totals.remote_reads
     << " remote reads (" << remote_read_fraction() * 100.0 << "% remote)";
  return os.str();
}

}  // namespace sap
