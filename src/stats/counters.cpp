#include "stats/counters.hpp"

namespace sap {

std::string to_string(AccessKind kind) {
  switch (kind) {
    case AccessKind::kWrite:
      return "write";
    case AccessKind::kLocalRead:
      return "local";
    case AccessKind::kCachedRead:
      return "cached";
    case AccessKind::kRemoteRead:
      return "remote";
  }
  return "?";
}

}  // namespace sap
