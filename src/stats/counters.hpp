// Access accounting.
//
// §7: "Accesses to array elements were categorized as follows: write
// (always local), local read, cached read, remote read. The totals of each
// access type were accumulated for the execution of each program."
// The headline metric, "% of Reads Remote", is remote / (local+cached+remote).
#pragma once

#include <cstdint>
#include <string>

namespace sap {

enum class AccessKind : std::uint8_t {
  kWrite,       // always local under owner-computes
  kLocalRead,   // page owned by the executing PE
  kCachedRead,  // page previously fetched and still resident
  kRemoteRead,  // page fetched from its owner now
};

std::string to_string(AccessKind kind);

struct AccessCounters {
  std::uint64_t writes = 0;
  std::uint64_t local_reads = 0;
  std::uint64_t cached_reads = 0;
  std::uint64_t remote_reads = 0;

  void record(AccessKind kind) noexcept {
    switch (kind) {
      case AccessKind::kWrite: ++writes; break;
      case AccessKind::kLocalRead: ++local_reads; break;
      case AccessKind::kCachedRead: ++cached_reads; break;
      case AccessKind::kRemoteRead: ++remote_reads; break;
    }
  }

  std::uint64_t total_reads() const noexcept {
    return local_reads + cached_reads + remote_reads;
  }

  /// The paper's "% of Reads Remote" as a fraction in [0, 1].
  double remote_read_fraction() const noexcept {
    const std::uint64_t reads = total_reads();
    return reads == 0 ? 0.0 : static_cast<double>(remote_reads) /
                                  static_cast<double>(reads);
  }

  AccessCounters& operator+=(const AccessCounters& other) noexcept {
    writes += other.writes;
    local_reads += other.local_reads;
    cached_reads += other.cached_reads;
    remote_reads += other.remote_reads;
    return *this;
  }

  friend bool operator==(const AccessCounters&,
                         const AccessCounters&) = default;
};

}  // namespace sap
