// Minimal JSON emission for machine-readable bench output.
//
// Bench binaries already print human tables and (optionally) CSV; the
// JSON writer gives downstream tooling a structured form —
// `BENCH_<artifact>.json` files carrying the same series/table data — so
// a perf trajectory can be assembled without scraping stdout.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "stats/series.hpp"

namespace sap {

/// Escapes `text` per RFC 8259 (quotes, backslash, control characters).
/// Returns the escaped body, without the surrounding quotes.
std::string json_escape(std::string_view text);

/// Streaming JSON writer.  Commas and nesting are handled by a state
/// stack, so any sequence of begin/key/value/end calls that respects
/// JSON's grammar produces valid output.  Numbers round-trip (shortest
/// form); non-finite doubles emit null.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member name; must be followed by a value or begin_*.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

 private:
  void separate();  // comma/space bookkeeping before a value or key

  std::ostream& out_;
  std::vector<bool> needs_comma_;  // one level per open object/array
  bool after_key_ = false;
};

/// {"artifact": ..., "x": <x_header>, "series": [{"label": ...,
///  "points": [{"x": ..., "y": ...}, ...]}, ...]}
void series_json(std::ostream& out, std::string_view artifact,
                 const std::vector<SweepSeries>& series,
                 std::string_view x_header);

/// {"artifact": ..., "columns": [...], "rows": [[...], ...]} — the JSON
/// twin of a TextTable (every cell a string).
void table_json(std::ostream& out, std::string_view artifact,
                const std::vector<std::string>& columns,
                const std::vector<std::vector<std::string>>& rows);

}  // namespace sap
