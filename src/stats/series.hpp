// Sweep series: the data behind every figure.
//
// Figures 1-4 plot one y value per (x = #PEs) for four configurations;
// `SweepSeries` is that, plus CSV/ASCII-chart export handled by report.hpp.
#pragma once

#include <string>
#include <vector>

namespace sap {

struct SweepPoint {
  double x = 0.0;
  double y = 0.0;
};

struct SweepSeries {
  std::string label;
  std::vector<SweepPoint> points;

  void add(double x, double y) { points.push_back({x, y}); }

  /// y at the given x; throws if absent.
  double y_at(double x) const;

  double max_y() const noexcept;
  double min_y() const noexcept;
};

}  // namespace sap
