// Per-PE page cache for remotely fetched pages.
//
// §4: because of single assignment, "a page fetched from a remote PE and
// cached locally will not need any further updates during the lifetime of
// the array" — so there is no coherence protocol at all.  The cache has a
// fixed capacity expressed in *elements* (the paper uses 256); the number
// of page frames is capacity/page_size and therefore varies with page size
// exactly as in §6.
//
// §5 reuse: entries are tagged with the array *generation* at fetch time;
// a re-initialization invalidates by bumping the generation, making stale
// hits impossible (tested in cache and machine suites).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "cache/replacement.hpp"
#include "memory/page.hpp"
#include "support/rng.hpp"

namespace sap::obs {
class Counter;
}  // namespace sap::obs

namespace sap {

/// Aggregate statistics a cache accumulates over its lifetime.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class PageCache {
 public:
  /// capacity_elements == 0 builds a disabled cache (the "No Cache"
  /// series of every figure): lookups always miss and inserts are ignored.
  PageCache(std::int64_t capacity_elements, std::int64_t page_size,
            ReplacementPolicy policy = ReplacementPolicy::kLru,
            std::uint64_t seed = 0);

  bool enabled() const noexcept { return frame_count_ > 0; }
  std::int64_t frame_count() const noexcept { return frame_count_; }
  std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(entries_.size());
  }
  ReplacementPolicy policy() const noexcept { return policy_; }
  const CacheStats& stats() const noexcept { return stats_; }

  /// Lookup of (page, generation).  A hit refreshes recency under LRU.
  /// A generation mismatch counts as a miss (stale entry is dropped).
  bool lookup(PageId page, std::uint64_t generation);

  /// Inserts after a miss (no-op when disabled or already present).
  /// Evicts per policy when full.
  void insert(PageId page, std::uint64_t generation);

  /// Drops every entry belonging to `array` (§5 re-initialization path for
  /// machines that prefer eager invalidation over generation tags).
  void invalidate_array(ArrayId array);

  /// Drops everything.
  void clear();

  /// True when the page is resident with the given generation (no stats
  /// or recency side effects; for tests).
  bool contains(PageId page, std::uint64_t generation) const;

  /// Attributes this cache to a PE: hits/misses/evictions additionally
  /// feed per-PE counters in the metrics registry (only while metrics
  /// collection is enabled — the registry handles are resolved here once
  /// so the hot path stays a pointer check).
  void attribute_pe(std::uint32_t pe);

 private:
  struct Entry {
    std::uint64_t generation = 0;
    // Position in order_ (LRU/FIFO bookkeeping).
    std::list<PageId>::iterator order_pos;
  };

  void evict_one();
  void record_miss();

  std::int64_t frame_count_;
  ReplacementPolicy policy_;
  std::unordered_map<PageId, Entry> entries_;
  // Front = next victim under LRU (least recent) and FIFO (oldest).
  std::list<PageId> order_;
  SplitMix64 rng_;
  CacheStats stats_;
  obs::Counter* pe_hits_ = nullptr;       // set by attribute_pe
  obs::Counter* pe_misses_ = nullptr;     // set by attribute_pe
  obs::Counter* pe_evictions_ = nullptr;  // set by attribute_pe
};

}  // namespace sap
