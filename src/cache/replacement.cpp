#include "cache/replacement.hpp"

namespace sap {

std::string to_string(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "LRU";
    case ReplacementPolicy::kFifo:
      return "FIFO";
    case ReplacementPolicy::kRandom:
      return "random";
  }
  return "?";
}

}  // namespace sap
