// Cache replacement policies.
//
// §4: "The cache used will be of fixed size and thus must use some sort of
// page replacement strategy. For our simulation, we chose a
// least-recently-used page replacement strategy."  FIFO and Random are
// provided for the A4 ablation (does the paper's LRU choice matter?).
#pragma once

#include <string>

namespace sap {

enum class ReplacementPolicy {
  kLru,     // paper's choice
  kFifo,    // insertion order
  kRandom,  // uniform random victim (deterministic seed)
};

std::string to_string(ReplacementPolicy policy);

}  // namespace sap
