#include "cache/page_cache.hpp"

#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

PageCache::PageCache(std::int64_t capacity_elements, std::int64_t page_size,
                     ReplacementPolicy policy, std::uint64_t seed)
    : frame_count_(0), policy_(policy), rng_(seed) {
  if (capacity_elements < 0) throw ConfigError("cache capacity negative");
  if (page_size < 1) throw ConfigError("page size must be >= 1");
  frame_count_ = capacity_elements / page_size;
}

bool PageCache::lookup(PageId page, std::uint64_t generation) {
  if (!enabled()) {
    ++stats_.misses;
    return false;
  }
  auto it = entries_.find(page);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  if (it->second.generation != generation) {
    // Stale copy of a re-initialized array: drop it; miss.
    order_.erase(it->second.order_pos);
    entries_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return false;
  }
  if (policy_ == ReplacementPolicy::kLru) {
    order_.splice(order_.end(), order_, it->second.order_pos);
  }
  ++stats_.hits;
  return true;
}

void PageCache::insert(PageId page, std::uint64_t generation) {
  if (!enabled()) return;
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    // Refresh of a stale or racing insert: update generation in place.
    it->second.generation = generation;
    if (policy_ == ReplacementPolicy::kLru) {
      order_.splice(order_.end(), order_, it->second.order_pos);
    }
    return;
  }
  if (static_cast<std::int64_t>(entries_.size()) >= frame_count_) evict_one();
  order_.push_back(page);
  entries_.emplace(page, Entry{generation, std::prev(order_.end())});
}

void PageCache::evict_one() {
  SAP_DCHECK(!order_.empty(), "evicting from empty cache");
  std::list<PageId>::iterator victim;
  if (policy_ == ReplacementPolicy::kRandom) {
    auto idx = rng_.next_below(static_cast<std::uint64_t>(order_.size()));
    victim = order_.begin();
    std::advance(victim, static_cast<std::ptrdiff_t>(idx));
  } else {
    victim = order_.begin();  // LRU: least recent; FIFO: oldest.
  }
  entries_.erase(*victim);
  order_.erase(victim);
  ++stats_.evictions;
}

void PageCache::invalidate_array(ArrayId array) {
  for (auto it = order_.begin(); it != order_.end();) {
    if (it->array == array) {
      entries_.erase(*it);
      it = order_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

void PageCache::clear() {
  stats_.invalidations += entries_.size();
  entries_.clear();
  order_.clear();
}

bool PageCache::contains(PageId page, std::uint64_t generation) const {
  auto it = entries_.find(page);
  return it != entries_.end() && it->second.generation == generation;
}

}  // namespace sap
