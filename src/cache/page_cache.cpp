#include "cache/page_cache.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

namespace {

// Aggregate cache tallies across every PE of every machine in the
// process.  Deterministic: cache behaviour is a pure function of the
// access stream, which the runtime reproduces regardless of worker count.
obs::Counter& agg_hits() {
  static obs::Counter& c = obs::counter("cache/hits");
  return c;
}
obs::Counter& agg_misses() {
  static obs::Counter& c = obs::counter("cache/misses");
  return c;
}
obs::Counter& agg_evictions() {
  static obs::Counter& c = obs::counter("cache/evictions");
  return c;
}
obs::Counter& agg_invalidations() {
  static obs::Counter& c = obs::counter("cache/invalidations");
  return c;
}

}  // namespace

PageCache::PageCache(std::int64_t capacity_elements, std::int64_t page_size,
                     ReplacementPolicy policy, std::uint64_t seed)
    : frame_count_(0), policy_(policy), rng_(seed) {
  if (capacity_elements < 0) throw ConfigError("cache capacity negative");
  if (page_size < 1) throw ConfigError("page size must be >= 1");
  frame_count_ = capacity_elements / page_size;
}

bool PageCache::lookup(PageId page, std::uint64_t generation) {
  if (!enabled()) {
    ++stats_.misses;
    record_miss();
    return false;
  }
  auto it = entries_.find(page);
  if (it == entries_.end()) {
    ++stats_.misses;
    record_miss();
    return false;
  }
  if (it->second.generation != generation) {
    // Stale copy of a re-initialized array: drop it; miss.
    order_.erase(it->second.order_pos);
    entries_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    agg_invalidations().add(1);
    record_miss();
    return false;
  }
  if (policy_ == ReplacementPolicy::kLru) {
    order_.splice(order_.end(), order_, it->second.order_pos);
  }
  ++stats_.hits;
  agg_hits().add(1);
  if (pe_hits_ != nullptr && obs::collecting()) pe_hits_->add(1);
  return true;
}

void PageCache::record_miss() {
  agg_misses().add(1);
  if (pe_misses_ != nullptr && obs::collecting()) pe_misses_->add(1);
}

void PageCache::insert(PageId page, std::uint64_t generation) {
  if (!enabled()) return;
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    // Refresh of a stale or racing insert: update generation in place.
    it->second.generation = generation;
    if (policy_ == ReplacementPolicy::kLru) {
      order_.splice(order_.end(), order_, it->second.order_pos);
    }
    return;
  }
  if (static_cast<std::int64_t>(entries_.size()) >= frame_count_) evict_one();
  order_.push_back(page);
  entries_.emplace(page, Entry{generation, std::prev(order_.end())});
}

void PageCache::evict_one() {
  SAP_DCHECK(!order_.empty(), "evicting from empty cache");
  std::list<PageId>::iterator victim;
  if (policy_ == ReplacementPolicy::kRandom) {
    auto idx = rng_.next_below(static_cast<std::uint64_t>(order_.size()));
    victim = order_.begin();
    std::advance(victim, static_cast<std::ptrdiff_t>(idx));
  } else {
    victim = order_.begin();  // LRU: least recent; FIFO: oldest.
  }
  entries_.erase(*victim);
  order_.erase(victim);
  ++stats_.evictions;
  agg_evictions().add(1);
  if (pe_evictions_ != nullptr && obs::collecting()) pe_evictions_->add(1);
}

void PageCache::invalidate_array(ArrayId array) {
  for (auto it = order_.begin(); it != order_.end();) {
    if (it->array == array) {
      entries_.erase(*it);
      it = order_.erase(it);
      ++stats_.invalidations;
      agg_invalidations().add(1);
    } else {
      ++it;
    }
  }
}

void PageCache::clear() {
  stats_.invalidations += entries_.size();
  agg_invalidations().add(entries_.size());
  entries_.clear();
  order_.clear();
}

bool PageCache::contains(PageId page, std::uint64_t generation) const {
  auto it = entries_.find(page);
  return it != entries_.end() && it->second.generation == generation;
}

void PageCache::attribute_pe(std::uint32_t pe) {
  const std::string prefix = "cache/pe" + std::to_string(pe) + "/";
  pe_hits_ = &obs::counter(prefix + "hits");
  pe_misses_ = &obs::counter(prefix + "misses");
  pe_evictions_ = &obs::counter(prefix + "evictions");
}

}  // namespace sap
