#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "stats/json.hpp"

namespace sap::obs {

namespace {

// Capacity of one per-thread shard.  Registration past the cap folds into
// the reserved overflow metric (slot 0) instead of failing: observability
// must never crash the process it observes.
constexpr std::size_t kMaxCounters = 4096;
constexpr std::size_t kMaxHistograms = 128;
constexpr std::size_t kBuckets = 65;  // bucket b covers [2^(b-1), 2^b - 1]

struct HistShard {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
};

/// One thread's slice of every metric.  Writers touch only their own
/// shard with relaxed atomics; the merge reads all shards on demand.
/// Shards are recycled through a free list when threads exit, so the
/// shard count is bounded by the peak number of concurrent threads.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<HistShard, kMaxHistograms> hists{};
};

unsigned bucket_of(std::uint64_t value) noexcept {
  const unsigned width = static_cast<unsigned>(std::bit_width(value));
  return width < kBuckets ? width : kBuckets - 1;
}

}  // namespace

class Registry {
 public:
  static Registry& instance() {
    // Leaked singleton: thread_local destructors and atexit hooks may
    // still release shards / snapshot metrics during teardown.
    static Registry* registry = new Registry();
    return *registry;
  }

  Counter& get_counter(std::string_view name, Determinism det) {
    const std::lock_guard<std::mutex> lock(meta_mutex_);
    const auto it = counter_ids_.find(name);
    if (it != counter_ids_.end()) return counters_[it->second];
    if (counters_.size() >= kMaxCounters) return counters_[0];  // overflow
    const auto id = static_cast<std::uint32_t>(counters_.size());
    counters_.push_back(Counter(id));
    counter_meta_.push_back({std::string(name), det});
    counter_ids_.emplace(std::string(name), id);
    return counters_[id];
  }

  Histogram& get_histogram(std::string_view name, Determinism det) {
    const std::lock_guard<std::mutex> lock(meta_mutex_);
    const auto it = histogram_ids_.find(name);
    if (it != histogram_ids_.end()) return histograms_[it->second];
    if (histograms_.size() >= kMaxHistograms) return histograms_[0];
    const auto id = static_cast<std::uint32_t>(histograms_.size());
    histograms_.push_back(Histogram(id));
    histogram_meta_.push_back({std::string(name), det});
    histogram_ids_.emplace(std::string(name), id);
    return histograms_[id];
  }

  Shard& acquire_shard() {
    const std::lock_guard<std::mutex> lock(shard_mutex_);
    if (!free_shards_.empty()) {
      Shard* shard = free_shards_.back();
      free_shards_.pop_back();
      return *shard;
    }
    shards_.push_back(std::make_unique<Shard>());
    return *shards_.back();
  }

  void release_shard(Shard* shard) {
    // Values stay: the shard keeps counting toward the merged totals and
    // a future thread continues on top of them (sums commute).
    const std::lock_guard<std::mutex> lock(shard_mutex_);
    free_shards_.push_back(shard);
  }

  MetricsSnapshot snapshot() {
    const std::lock_guard<std::mutex> meta_lock(meta_mutex_);
    const std::lock_guard<std::mutex> shard_lock(shard_mutex_);
    MetricsSnapshot out;
    // counter_ids_ / histogram_ids_ iterate in name order: the export is
    // sorted without a separate pass.
    for (const auto& [name, id] : counter_ids_) {
      CounterSample sample;
      sample.name = name;
      sample.det = counter_meta_[id].second;
      for (const auto& shard : shards_) {
        sample.value += shard->counters[id].load(std::memory_order_relaxed);
      }
      out.counters.push_back(std::move(sample));
    }
    for (const auto& [name, id] : histogram_ids_) {
      HistogramSample sample;
      sample.name = name;
      sample.det = histogram_meta_[id].second;
      std::array<std::uint64_t, kBuckets> buckets{};
      std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
      for (const auto& shard : shards_) {
        const HistShard& h = shard->hists[id];
        sample.count += h.count.load(std::memory_order_relaxed);
        sample.sum += h.sum.load(std::memory_order_relaxed);
        min = std::min(min, h.min.load(std::memory_order_relaxed));
        sample.max = std::max(sample.max,
                              h.max.load(std::memory_order_relaxed));
        for (std::size_t b = 0; b < kBuckets; ++b) {
          buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
        }
      }
      if (sample.count > 0) {
        sample.min = min;
        sample.p50 = percentile(buckets, sample, 0.50);
        sample.p90 = percentile(buckets, sample, 0.90);
        sample.p99 = percentile(buckets, sample, 0.99);
      }
      out.histograms.push_back(std::move(sample));
    }
    return out;
  }

  void reset() {
    const std::lock_guard<std::mutex> meta_lock(meta_mutex_);
    const std::lock_guard<std::mutex> shard_lock(shard_mutex_);
    for (const auto& shard : shards_) {
      for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
      for (auto& h : shard->hists) {
        h.count.store(0, std::memory_order_relaxed);
        h.sum.store(0, std::memory_order_relaxed);
        h.min.store(std::numeric_limits<std::uint64_t>::max(),
                    std::memory_order_relaxed);
        h.max.store(0, std::memory_order_relaxed);
        for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      }
    }
  }

 private:
  Registry() {
    // Slot 0 of each kind is the overflow sink for registrations past the
    // shard capacity (never expected; bounded-cardinality names only).
    counters_.push_back(Counter(0));
    counter_meta_.push_back({"obs/counter_overflow", Determinism::kScheduler});
    counter_ids_.emplace("obs/counter_overflow", 0);
    histograms_.push_back(Histogram(0));
    histogram_meta_.push_back(
        {"obs/histogram_overflow", Determinism::kScheduler});
    histogram_ids_.emplace("obs/histogram_overflow", 0);
  }

  /// Upper bound of the bucket holding the q-quantile sample, clamped to
  /// the observed [min, max] range.
  static double percentile(const std::array<std::uint64_t, kBuckets>& buckets,
                           const HistogramSample& sample, double q) {
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(sample.count) + 0.5);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      cumulative += buckets[b];
      if (cumulative >= target && cumulative > 0) {
        const double upper =
            b == 0 ? 0.0 : static_cast<double>((1ull << b) - 1);
        return std::clamp(upper, static_cast<double>(sample.min),
                          static_cast<double>(sample.max));
      }
    }
    return static_cast<double>(sample.max);
  }

  std::mutex meta_mutex_;
  std::deque<Counter> counters_;  // stable addresses for handed-out refs
  std::vector<std::pair<std::string, Determinism>> counter_meta_;
  std::map<std::string, std::uint32_t, std::less<>> counter_ids_;
  std::deque<Histogram> histograms_;
  std::vector<std::pair<std::string, Determinism>> histogram_meta_;
  std::map<std::string, std::uint32_t, std::less<>> histogram_ids_;

  std::mutex shard_mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Shard*> free_shards_;
};

namespace {

/// Thread-local shard handle; the destructor recycles the shard (with its
/// values — totals are sums, so recycling cannot lose or double counts).
struct TlsShard {
  Shard* shard = nullptr;
  ~TlsShard() {
    if (shard != nullptr) Registry::instance().release_shard(shard);
  }
};

thread_local TlsShard t_shard;

Shard& local_shard() {
  if (t_shard.shard == nullptr) {
    t_shard.shard = &Registry::instance().acquire_shard();
  }
  return *t_shard.shard;
}

}  // namespace

void set_metrics_collection(bool enabled) noexcept {
  if (enabled) {
    detail::g_collect_flags.fetch_or(detail::kMetricsFlag,
                                     std::memory_order_relaxed);
  } else {
    detail::g_collect_flags.fetch_and(~detail::kMetricsFlag,
                                      std::memory_order_relaxed);
  }
}

bool metrics_collection_enabled() noexcept {
  return (detail::g_collect_flags.load(std::memory_order_relaxed) &
          detail::kMetricsFlag) != 0;
}

std::string_view to_string(Determinism det) noexcept {
  return det == Determinism::kDeterministic ? "deterministic" : "scheduler";
}

void Counter::add(std::uint64_t n) noexcept {
  local_shard().counters[id_].fetch_add(n, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t value) noexcept {
  HistShard& h = local_shard().hists[id_];
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t cur = h.min.load(std::memory_order_relaxed);
  while (value < cur &&
         !h.min.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = h.max.load(std::memory_order_relaxed);
  while (value > cur &&
         !h.max.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  h.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
}

Counter& counter(std::string_view name, Determinism det) {
  return Registry::instance().get_counter(name, det);
}

Histogram& histogram(std::string_view name, Determinism det) {
  return Registry::instance().get_histogram(name, det);
}

MetricsSnapshot snapshot_metrics() { return Registry::instance().snapshot(); }

void reset_metrics() { Registry::instance().reset(); }

namespace {

void write_section(JsonWriter& json, const MetricsSnapshot& snapshot,
                   Determinism det) {
  json.begin_object();
  json.key("counters").begin_object();
  for (const CounterSample& c : snapshot.counters) {
    if (c.det != det) continue;
    json.key(c.name).value(c.value);
  }
  json.end_object();
  json.key("histograms").begin_object();
  for (const HistogramSample& h : snapshot.histograms) {
    if (h.det != det) continue;
    json.key(h.name).begin_object();
    json.key("count").value(h.count);
    json.key("sum").value(h.sum);
    json.key("min").value(h.min);
    json.key("max").value(h.max);
    json.key("p50").value(h.p50);
    json.key("p90").value(h.p90);
    json.key("p99").value(h.p99);
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

}  // namespace

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot) {
  JsonWriter json(out);
  json.begin_object();
  json.key("schema").value("sap-metrics-v1");
  json.key("deterministic");
  write_section(json, snapshot, Determinism::kDeterministic);
  json.key("scheduler");
  write_section(json, snapshot, Determinism::kScheduler);
  json.end_object();
  out << '\n';
}

}  // namespace sap::obs
