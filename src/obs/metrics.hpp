// Process-wide metrics registry: named monotonic counters and value
// histograms (DESIGN.md §12).
//
// Counters are the always-on tier of the instrumentation layer: an
// increment is one relaxed atomic add into a lock-free per-thread shard,
// cheap enough to live on hot paths (cache lookups, message sends, steal
// attempts).  Shards are merged on demand by snapshot_metrics(); nothing
// is ever locked on the write path.  Histograms share the shard machinery
// but callers are expected to feed them only when collecting() is true,
// because producing a value to record usually costs a clock read.
//
// Consistency claim 10 ("instrumentation never perturbs results") rests on
// this layer being write-only from the simulator's point of view: no
// simulation decision ever reads a metric, so the counters can only
// observe.  Metrics whose merged value depends on scheduler timing
// (steals, parks, pool idle waits, every wall-time histogram) are
// registered with Determinism::kScheduler and land in a separate
// non-deterministic section of the JSON export, so the deterministic
// section is byte-comparable across runs and worker counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sap::obs {

namespace detail {

/// Bit 0: metrics collection requested (SAPART_METRICS); bit 1: tracing
/// enabled (SAPART_TRACE / start_tracing).  One relaxed load answers the
/// "is anyone watching?" question that gates the expensive extras.
inline std::atomic<std::uint32_t> g_collect_flags{0};

constexpr std::uint32_t kMetricsFlag = 1u << 0;
constexpr std::uint32_t kTraceFlag = 1u << 1;

}  // namespace detail

/// True when either exporter (metrics or trace) is active.  Gates
/// optional detail — per-PE-pair network counters, duration histograms —
/// that would otherwise tax every un-instrumented run.
inline bool collecting() noexcept {
  return detail::g_collect_flags.load(std::memory_order_relaxed) != 0;
}

/// Flips the metrics-collection bit (SAPART_METRICS / tests).
void set_metrics_collection(bool enabled) noexcept;
bool metrics_collection_enabled() noexcept;

/// Whether a metric's merged value is a pure function of (program,
/// machine config) or depends on scheduler/timing behaviour.
enum class Determinism { kDeterministic, kScheduler };

std::string_view to_string(Determinism det) noexcept;

/// Monotonic counter handle.  Obtained once (registration takes a lock),
/// then incremented lock-free; handles stay valid for the process
/// lifetime, so call sites cache them in function-local statics.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept;

 private:
  friend class Registry;
  explicit Counter(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_;
};

/// Value histogram handle: power-of-two buckets plus count/sum/min/max.
/// Percentiles from the export are bucket-resolution approximations
/// (within a factor of two), which is all a wall-time profile needs.
class Histogram {
 public:
  void record(std::uint64_t value) noexcept;

 private:
  friend class Registry;
  explicit Histogram(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_;
};

/// Registers (first call) or finds (subsequent calls) the named metric.
/// Names are `subsystem/metric` paths; the first segment becomes the
/// category in the trace export.  A metric's Determinism is fixed by its
/// first registration.
Counter& counter(std::string_view name,
                 Determinism det = Determinism::kDeterministic);
Histogram& histogram(std::string_view name,
                     Determinism det = Determinism::kScheduler);

struct CounterSample {
  std::string name;
  Determinism det = Determinism::kDeterministic;
  std::uint64_t value = 0;
};

struct HistogramSample {
  std::string name;
  Determinism det = Determinism::kScheduler;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Merged view over every per-thread shard, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<HistogramSample> histograms;
};

MetricsSnapshot snapshot_metrics();

/// {"schema": "sap-metrics-v1", "deterministic": {...}, "scheduler":
///  {...}} — scheduler-dependent metrics are segregated so the
/// deterministic block is byte-comparable across runs (docs/TRACE_FORMAT.md).
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot);

/// Zeroes every shard (counters, histograms).  For tests only: callers
/// must guarantee no concurrent writers.
void reset_metrics();

}  // namespace sap::obs
