#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "stats/json.hpp"
#include "support/error.hpp"
#include "support/parse.hpp"

namespace sap::obs {

namespace {

// Per-thread event cap: a runaway tracing session degrades to dropped
// events (counted in obs/dropped_events), never to unbounded memory.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct TraceEvent {
  const char* cat;
  const char* name;
  char phase;  // 'X' complete, 'i' instant
  std::uint32_t tid;
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;
  const char* key1;
  std::int64_t val1;
  const char* key2;
  std::int64_t val2;
};

/// One thread's events.  The mutex is uncontended on the record path (only
/// the owning thread pushes); the exporter takes it briefly per buffer.
struct EventBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
  std::string thread_name;
  std::uint64_t dropped = 0;
};

class Collector {
 public:
  static Collector& instance() {
    static Collector* collector = new Collector();  // leaked: atexit-safe
    return *collector;
  }

  EventBuffer& acquire_buffer() {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<EventBuffer>());
    buffers_.back()->tid = static_cast<std::uint32_t>(buffers_.size() - 1);
    return *buffers_.back();
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      buffer->events.clear();
      buffer->dropped = 0;
    }
  }

  std::size_t event_count() {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto& buffer : buffers_) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      total += buffer->events.size();
    }
    return total;
  }

  struct Collected {
    std::vector<TraceEvent> events;
    std::vector<std::pair<std::uint32_t, std::string>> thread_names;
  };

  Collected collect() {
    const std::lock_guard<std::mutex> lock(mutex_);
    Collected out;
    for (const auto& buffer : buffers_) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      out.events.insert(out.events.end(), buffer->events.begin(),
                        buffer->events.end());
      if (!buffer->thread_name.empty()) {
        out.thread_names.emplace_back(buffer->tid, buffer->thread_name);
      }
    }
    std::stable_sort(out.events.begin(), out.events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.ts_ns < b.ts_ns;
                     });
    return out;
  }

  std::uint64_t anchor_ns() const noexcept { return anchor_ns_; }
  void rebase_anchor() noexcept { anchor_ns_ = steady_ns(); }

  static std::uint64_t steady_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<EventBuffer>> buffers_;
  std::uint64_t anchor_ns_ = steady_ns();
};

thread_local EventBuffer* t_buffer = nullptr;

EventBuffer& local_buffer() {
  if (t_buffer == nullptr) t_buffer = &Collector::instance().acquire_buffer();
  return *t_buffer;
}

void push_event(TraceEvent event) {
  EventBuffer& buffer = local_buffer();
  event.tid = buffer.tid;
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    counter("obs/dropped_events", Determinism::kScheduler).add(1);
    return;
  }
  buffer.events.push_back(event);
}

// --- exporter configuration (bench drivers / advise_tool) ---------------

std::mutex g_output_mutex;
std::string g_trace_output_path;
std::string g_metrics_output_path;
bool g_atexit_installed = false;

void probe_writable(const std::string& path, const char* what) {
  // Append mode: creates a missing file without truncating an existing
  // one, so a failed run does not wipe a previous good artifact.
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    throw ConfigError(std::string(what) + " destination '" + path +
                      "' is not writable");
  }
}

void install_atexit_flush_locked() {
  if (g_atexit_installed) return;
  g_atexit_installed = true;
  std::atexit([] { flush_configured_outputs(); });
}

}  // namespace

void start_tracing() {
  Collector::instance().clear();
  Collector::instance().rebase_anchor();
  detail::g_collect_flags.fetch_or(detail::kTraceFlag,
                                   std::memory_order_relaxed);
}

void stop_tracing() {
  detail::g_collect_flags.fetch_and(~detail::kTraceFlag,
                                    std::memory_order_relaxed);
}

void clear_trace() { Collector::instance().clear(); }

std::size_t trace_event_count() { return Collector::instance().event_count(); }

void set_thread_name(const char* name) {
  EventBuffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.thread_name = name;
}

void Span::open(const char* cat, const char* name) noexcept {
  armed_ = true;
  cat_ = cat;
  name_ = name;
  start_ns_ = Collector::steady_ns();
}

void Span::close() noexcept {
  // Tracing may have stopped mid-span; the half-open span is dropped so a
  // stopped trace never grows.
  if (!tracing_enabled()) return;
  const std::uint64_t end_ns = Collector::steady_ns();
  const std::uint64_t anchor = Collector::instance().anchor_ns();
  TraceEvent event{};
  event.cat = cat_;
  event.name = name_;
  event.phase = 'X';
  event.ts_ns = start_ns_ > anchor ? start_ns_ - anchor : 0;
  event.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  event.key1 = key1_;
  event.val1 = val1_;
  event.key2 = key2_;
  event.val2 = val2_;
  push_event(event);
}

void instant_event(const char* cat, const char* name, const char* arg_key,
                   std::int64_t arg_value) noexcept {
  if (!tracing_enabled()) return;
  const std::uint64_t now = Collector::steady_ns();
  const std::uint64_t anchor = Collector::instance().anchor_ns();
  TraceEvent event{};
  event.cat = cat;
  event.name = name;
  event.phase = 'i';
  event.ts_ns = now > anchor ? now - anchor : 0;
  event.key1 = arg_key;
  event.val1 = arg_value;
  push_event(event);
}

namespace {

double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

/// "cache/pe3/hits" -> "cache"; no slash -> the whole name.
std::string category_of(const std::string& name) {
  const auto slash = name.find('/');
  return slash == std::string::npos ? name : name.substr(0, slash);
}

}  // namespace

void write_chrome_trace(std::ostream& out) {
  auto collected = Collector::instance().collect();
  JsonWriter json(out);
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("traceEvents").begin_array();
  for (const auto& [tid, name] : collected.thread_names) {
    json.begin_object();
    json.key("ph").value("M");
    json.key("name").value("thread_name");
    json.key("pid").value(std::int64_t{0});
    json.key("tid").value(static_cast<std::int64_t>(tid));
    json.key("args").begin_object();
    json.key("name").value(name);
    json.end_object();
    json.end_object();
  }
  std::uint64_t last_ts_ns = 0;
  for (const TraceEvent& event : collected.events) {
    last_ts_ns = std::max(last_ts_ns, event.ts_ns + event.dur_ns);
    json.begin_object();
    json.key("ph").value(std::string_view(&event.phase, 1));
    json.key("name").value(event.name);
    json.key("cat").value(event.cat);
    json.key("ts").value(to_us(event.ts_ns));
    if (event.phase == 'X') json.key("dur").value(to_us(event.dur_ns));
    json.key("pid").value(std::int64_t{0});
    json.key("tid").value(static_cast<std::int64_t>(event.tid));
    if (event.phase == 'i') json.key("s").value("t");  // thread-scoped
    if (event.key1 != nullptr) {
      json.key("args").begin_object();
      json.key(event.key1).value(event.val1);
      if (event.key2 != nullptr) json.key(event.key2).value(event.val2);
      json.end_object();
    }
    json.end_object();
  }
  // Final counter dump: the metrics registry's merged totals as Chrome
  // counter events, so cache/network/runtime tallies ride in the same
  // artifact the timeline does.
  const MetricsSnapshot snapshot = snapshot_metrics();
  for (const CounterSample& c : snapshot.counters) {
    json.begin_object();
    json.key("ph").value("C");
    json.key("name").value(c.name);
    json.key("cat").value(category_of(c.name));
    json.key("ts").value(to_us(last_ts_ns));
    json.key("pid").value(std::int64_t{0});
    json.key("tid").value(std::int64_t{0});
    json.key("args").begin_object();
    json.key("value").value(c.value);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

void write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (out) {
    write_chrome_trace(out);
    out.flush();
  }
  if (!out) {
    throw Error("cannot write trace output '" + path + "'");
  }
}

std::optional<std::string> trace_path_from_env() {
  return parse_output_path(std::getenv("SAPART_TRACE"), "SAPART_TRACE");
}

std::optional<std::string> metrics_path_from_env() {
  return parse_output_path(std::getenv("SAPART_METRICS"), "SAPART_METRICS");
}

void enable_trace_output(const std::string& path) {
  probe_writable(path, "trace");
  {
    const std::lock_guard<std::mutex> lock(g_output_mutex);
    g_trace_output_path = path;
    install_atexit_flush_locked();
  }
  start_tracing();
}

void enable_metrics_output(const std::string& path) {
  probe_writable(path, "metrics");
  {
    const std::lock_guard<std::mutex> lock(g_output_mutex);
    g_metrics_output_path = path;
    install_atexit_flush_locked();
  }
  set_metrics_collection(true);
}

void flush_configured_outputs() noexcept {
  std::string trace_path;
  std::string metrics_path;
  {
    const std::lock_guard<std::mutex> lock(g_output_mutex);
    trace_path.swap(g_trace_output_path);
    metrics_path.swap(g_metrics_output_path);
  }
  if (!trace_path.empty()) {
    try {
      write_chrome_trace_file(trace_path);
      std::fprintf(stderr, "[trace written to %s]\n", trace_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace flush failed: %s\n", e.what());
    }
  }
  if (!metrics_path.empty()) {
    try {
      std::ofstream out(metrics_path, std::ios::trunc);
      if (out) {
        write_metrics_json(out, snapshot_metrics());
        out.flush();
      }
      if (!out) {
        std::fprintf(stderr, "metrics flush failed: cannot write '%s'\n",
                     metrics_path.c_str());
      } else {
        std::fprintf(stderr, "[metrics written to %s]\n", metrics_path.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "metrics flush failed: %s\n", e.what());
    }
  }
}

}  // namespace sap::obs
