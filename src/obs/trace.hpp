// Phase spans and the Chrome trace-event exporter (DESIGN.md §12).
//
// Spans are the opt-in tier of the instrumentation layer: an RAII object
// that records (category, name, thread, start, duration, up to two
// integer args) into a lock-free-ish per-thread buffer — but only while
// tracing is enabled.  Disabled (the default), the constructor is one
// relaxed atomic load and a branch: no clock read, no allocation, no
// store.  That inertness is what lets spans sit inside the sharded
// runtime's scheduler without perturbing anything consistency claim 10
// promises to keep byte-identical.
//
// The export is the Chrome trace-event JSON format (loadable in Perfetto
// or chrome://tracing; docs/TRACE_FORMAT.md): complete ("X") events for
// spans, instant ("i") events for park/wake edges, metadata ("M") thread
// names, and a final counter ("C") dump of the metrics registry so cache,
// network and runtime totals appear alongside the timeline.
//
// Wiring: bench drivers and advise_tool enable the exporter from
// SAPART_TRACE=<path> or the --trace flag (flag wins) and flush at
// process exit; tests drive start_tracing()/write_chrome_trace directly.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"

namespace sap::obs {

inline bool tracing_enabled() noexcept {
  return (detail::g_collect_flags.load(std::memory_order_relaxed) &
          detail::kTraceFlag) != 0;
}

/// Clears previously collected events and starts collecting.
void start_tracing();

/// Stops collecting; already-recorded events stay until clear_trace()
/// or the next start_tracing().
void stop_tracing();

void clear_trace();

/// Number of collected events (spans + instants), for tests.
std::size_t trace_event_count();

/// Names the calling thread in the trace (metadata event on export).
void set_thread_name(const char* name);

/// RAII timing span.  `cat` and `name` must be string literals (or
/// otherwise outlive the trace): the disabled path must not copy.
class Span {
 public:
  Span(const char* cat, const char* name) noexcept {
    if (!tracing_enabled()) return;
    open(cat, name);
  }
  Span(const char* cat, const char* name, const char* arg_key,
       std::int64_t arg_value) noexcept
      : Span(cat, name) {
    arg(arg_key, arg_value);
  }
  ~Span() {
    if (armed_) close();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches an integer arg (thread/PE attribution).  At most two;
  /// further args are dropped.  No-op when the span is disarmed.
  void arg(const char* key, std::int64_t value) noexcept {
    if (!armed_) return;
    if (key1_ == nullptr) {
      key1_ = key;
      val1_ = value;
    } else if (key2_ == nullptr) {
      key2_ = key;
      val2_ = value;
    }
  }

 private:
  void open(const char* cat, const char* name) noexcept;
  void close() noexcept;

  bool armed_ = false;
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  const char* key1_ = nullptr;
  std::int64_t val1_ = 0;
  const char* key2_ = nullptr;
  std::int64_t val2_ = 0;
};

/// Zero-duration event (park/wake edges).  No-op when tracing is off.
void instant_event(const char* cat, const char* name,
                   const char* arg_key = nullptr,
                   std::int64_t arg_value = 0) noexcept;

/// Writes the collected events (plus thread metadata and a final metrics
/// counter dump) as Chrome trace-event JSON.
void write_chrome_trace(std::ostream& out);

/// As above into a file.  Throws sap::Error when the file cannot be
/// written (the exporter was explicitly requested; silence would hide a
/// missing artifact).
void write_chrome_trace_file(const std::string& path);

/// SAPART_TRACE / SAPART_METRICS, parsed with the SAPART_WORKERS
/// contract: unset -> nullopt; empty or whitespace-wrapped values throw
/// ConfigError (support/parse.hpp).
std::optional<std::string> trace_path_from_env();
std::optional<std::string> metrics_path_from_env();

/// Enables the trace exporter: probes that `path` is writable (throws
/// ConfigError otherwise), starts tracing, and installs a process-exit
/// flush that writes the file.
void enable_trace_output(const std::string& path);

/// Enables the metrics exporter likewise: probe, set_metrics_collection,
/// flush-at-exit of the metrics JSON.
void enable_metrics_output(const std::string& path);

/// Writes any configured outputs now and clears the configuration
/// (idempotent; the at-exit hook calls this).  Failures are reported on
/// stderr, never thrown: this runs during process teardown.
void flush_configured_outputs() noexcept;

}  // namespace sap::obs
