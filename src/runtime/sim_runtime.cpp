#include "runtime/sim_runtime.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/dataflow_replay.hpp"
#include "core/dataflow_trace.hpp"
#include "machine/host_reinit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

unsigned shard_workers_from_env() {
  return parse_worker_count(std::getenv("SAPART_SHARD_WORKERS"));
}

ThreadPool& shard_runtime_pool() {
  static ThreadPool pool(0);  // one worker per hardware thread
  return pool;
}

namespace {

// Scheduler metrics: all of these depend on thread timing (which worker
// won a race, how often a shard parked), so they live in the kScheduler
// export section — never compared across runs.
struct SchedulerMetrics {
  obs::Counter& steals = obs::counter("runtime/steals",
                                      obs::Determinism::kScheduler);
  obs::Counter& steal_attempts =
      obs::counter("runtime/steal_attempts", obs::Determinism::kScheduler);
  obs::Counter& parks = obs::counter("runtime/parks",
                                     obs::Determinism::kScheduler);
  obs::Counter& wakes = obs::counter("runtime/wakes",
                                     obs::Determinism::kScheduler);
  obs::Counter& dispatches =
      obs::counter("runtime/dispatches", obs::Determinism::kScheduler);
  obs::Counter& quiescence_checks =
      obs::counter("runtime/quiescence_checks",
                   obs::Determinism::kScheduler);
  // Batching effectiveness of the replay loop: instances completed per
  // replay->run() call.  A high instances/batches ratio means the
  // per-instance fast paths (cached env slot pointers, memoized bytecode
  // handles) amortize as intended; near 1.0 means the shard is
  // suspend-thrashing.
  obs::Counter& replayed_instances =
      obs::counter("runtime/replayed_instances",
                   obs::Determinism::kScheduler);
  obs::Counter& replay_batches =
      obs::counter("runtime/replay_batches", obs::Determinism::kScheduler);
};

SchedulerMetrics& scheduler_metrics() {
  static SchedulerMetrics metrics;
  return metrics;
}

/// All scheduler bookkeeping lives under one mutex: shard states, the
/// per-worker ready deques, park/wake transitions, the §5 barrier, and the
/// deadlock detector.  The replay hot path (instance execution) never
/// touches it — a shard runs to its next block between two lock episodes.
class SimRuntime {
 public:
  SimRuntime(const CompiledProgram& compiled, Machine& machine,
             unsigned workers, ThreadPool& pool)
      : compiled_(compiled),
        machine_(machine),
        workers_(workers),
        pool_(pool),
        set_(machine.num_pes()),
        queues_(workers) {
    const Topology& topology = machine_.network().topology();
    shards_.reserve(machine.num_pes());
    for (PeId pe = 0; pe < machine.num_pes(); ++pe) {
      shards_.push_back(std::make_unique<Shard>());
      Shard& s = *shards_.back();
      s.pe = pe;
      s.net = std::make_unique<NetworkBuffer>(topology);
      s.replay = std::make_unique<ShardReplay>(compiled, machine, pe,
                                               set_.streams[pe], *s.net);
      s.last_worker = pe % workers_;
      queues_[s.last_worker].push_back(&s);
    }
  }

  DataflowStats run() {
    obs::Span run_span("runtime", "sharded-run");
    run_span.arg("workers", workers_);
    run_span.arg("pes", static_cast<std::int64_t>(shards_.size()));
    DataflowStats stats;
    stats.workers = workers_;

    std::vector<std::future<void>> helpers;
    helpers.reserve(workers_ - 1);
    for (unsigned w = 1; w < workers_; ++w) {
      helpers.push_back(pool_.submit([this, w] { worker_loop(w); }));
    }

    // The calling thread is the trace producer; replay shards consume
    // published stream prefixes concurrently.
    try {
      const obs::Span producer_span("runtime", "trace-pass");
      StreamingSink sink(set_, [this] { on_publish(); });
      TraceBuilder builder(compiled_, machine_.partitioner(), sink,
                           set_.layouts);
      builder.build();
    } catch (...) {
      record_error(std::current_exception());
    }
    producer_done_.store(true, std::memory_order_release);
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      wake_input_parked_locked();
      check_deadlock_locked();
    }
    idle_cv_.notify_all();

    // ... then it becomes replay worker 0 until the run drains.
    worker_loop(0);
    for (auto& f : helpers) f.get();  // workers record errors, never throw

    if (first_error_) std::rethrow_exception(first_error_);

    // Deterministic merge: shard tallies absorb in PE-id order.
    for (const auto& s : shards_) {
      machine_.network().absorb(*s->net);
      stats.suspensions += s->replay->suspensions();
    }
    stats.parks = parks_;
    stats.steals = steals_;
    stats.scheduler_rounds = dispatches_;
    return stats;
  }

 private:
  enum class State : std::uint8_t { kReady, kRunning, kParked, kDone };

  struct Shard {
    PeId pe = 0;
    std::unique_ptr<NetworkBuffer> net;
    std::unique_ptr<ShardReplay> replay;
    // --- guarded by state_mutex_ ---
    State state = State::kReady;
    bool wake_pending = false;       // wake raced a park attempt
    bool parked_for_input = false;   // waiting on the trace producer
    bool reinit_requested = false;   // §5 request issued, grant pending
    bool pending_grant = false;      // §5 grant delivered while not parked
    ArrayId reinit_array = 0;
    unsigned last_worker = 0;
  };

  const InstanceStream& stream(const Shard& s) const {
    return set_.streams[s.pe];
  }

  void worker_loop(unsigned w) {
    std::unique_lock<std::mutex> lock(state_mutex_);
    for (;;) {
      if (abort_ || done_ == shards_.size()) return;
      Shard* s = pop_ready_locked(w);
      if (s == nullptr) {
        check_deadlock_locked();
        if (abort_) return;
        // Timed wait: robust against any missed notify, cheap when idle.
        idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
        continue;
      }
      s->state = State::kRunning;
      s->last_worker = w;
      ++dispatches_;
      scheduler_metrics().dispatches.add(1);
      lock.unlock();
      run_shard(*s, w);
      lock.lock();
    }
  }

  /// Own deque back first (LIFO, cache-warm), then steal from the other
  /// workers' fronts (FIFO, oldest work first).
  Shard* pop_ready_locked(unsigned w) {
    if (!queues_[w].empty()) {
      Shard* s = queues_[w].back();
      queues_[w].pop_back();
      return s;
    }
    if (workers_ > 1) scheduler_metrics().steal_attempts.add(1);
    for (unsigned i = 1; i < workers_; ++i) {
      auto& victim = queues_[(w + i) % workers_];
      if (!victim.empty()) {
        Shard* s = victim.front();
        victim.pop_front();
        ++steals_;
        scheduler_metrics().steals.add(1);
        return s;
      }
    }
    return nullptr;
  }

  void run_shard(Shard& s, unsigned w) {
    obs::Span span("runtime", "replay");
    span.arg("pe", s.pe);
    span.arg("worker", w);
    std::vector<ReaderToken> woken;
    for (;;) {
      if (abort_.load(std::memory_order_relaxed)) return;
      const std::size_t limit = stream(s).published();
      woken.clear();
      ReplayResult r;
      try {
        r = s.replay->run(limit, woken);
      } catch (...) {
        record_error(std::current_exception());
        return;
      }
      if (r.executed > 0) {
        scheduler_metrics().replayed_instances.add(r.executed);
        scheduler_metrics().replay_batches.add(1);
      }
      for (const ReaderToken token : woken) wake(token, w);
      switch (r.status) {
        case ReplayStatus::kExhausted: {
          if (stream(s).published() > limit) continue;  // tail raced in
          if (producer_done_.load(std::memory_order_acquire)) {
            if (stream(s).published() > limit) continue;
            mark_done(s);
            return;
          }
          if (spin_for_input(s, limit)) continue;
          if (!park(s, /*for_input=*/true, limit)) continue;
          return;
        }
        case ReplayStatus::kSuspended: {
          if (!park(s, /*for_input=*/false, 0)) continue;
          return;
        }
        case ReplayStatus::kReinitBarrier: {
          if (pass_reinit_barrier(s, r.reinit_array, w)) continue;
          return;  // parked awaiting the grant broadcast
        }
      }
    }
  }

  /// A short grace spin before parking: if the producer's next publication
  /// pulse is imminent the park/unpark round-trip is skipped.  Kept brief —
  /// consumers outpace the trace, so most of the wait belongs in a park,
  /// where the polling cannot steal memory bandwidth from the producer.
  bool spin_for_input(const Shard& s, std::size_t limit) {
    for (int i = 0; i < 64; ++i) {
      if (stream(s).published() > limit ||
          producer_done_.load(std::memory_order_acquire) ||
          abort_.load(std::memory_order_relaxed)) {
        return true;
      }
      std::this_thread::yield();
    }
    return false;
  }

  /// Parks the shard.  Returns false (shard stays runnable) when a wake
  /// raced in, or when new input already arrived for an input park — the
  /// re-check happens under the lock, so against writers (who set the cell
  /// flag, then take this lock to deliver the wake) and the producer (who
  /// publishes, then takes this lock in on_publish) no wakeup is lost.
  bool park(Shard& s, bool for_input, std::size_t observed_limit) {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (s.wake_pending) {
      s.wake_pending = false;
      return false;
    }
    if (for_input && (stream(s).published() > observed_limit ||
                      producer_done_.load(std::memory_order_relaxed))) {
      return false;
    }
    s.state = State::kParked;
    s.parked_for_input = for_input;
    if (for_input) input_waiters_.store(true, std::memory_order_relaxed);
    ++parked_;
    ++parks_;
    scheduler_metrics().parks.add(1);
    obs::instant_event("runtime", "park", "pe", s.pe);
    check_deadlock_locked();
    return true;
  }

  /// Re-arms a shard whose awaited cell was just written.
  void wake(PeId pe, unsigned w) {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    Shard& t = *shards_[pe];
    switch (t.state) {
      case State::kParked:
        unpark_locked(t, w);
        idle_cv_.notify_one();
        break;
      case State::kRunning:
      case State::kReady:
        t.wake_pending = true;
        break;
      case State::kDone:
        break;  // stale token: the shard advanced past the cell already
    }
  }

  void unpark_locked(Shard& t, unsigned w) {
    t.state = State::kReady;
    t.parked_for_input = false;
    --parked_;
    queues_[w].push_back(&t);
    scheduler_metrics().wakes.add(1);
    obs::instant_event("runtime", "wake", "pe", t.pe);
  }

  void mark_done(Shard& s) {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    s.state = State::kDone;
    ++done_;
    if (done_ == shards_.size()) idle_cv_.notify_all();
  }

  /// §5 barrier.  The request, the completion side effects (generation
  /// bump, cache invalidation, protocol messages on the shared network)
  /// and the grant delivery all happen under the scheduler lock; the
  /// protocol guarantees every other PE is parked right here when the last
  /// request arrives, so the cross-shard effects are quiescent — and the
  /// lock hand-off makes them visible to the woken shards.
  bool pass_reinit_barrier(Shard& s, ArrayId array, unsigned w) {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (s.reinit_requested) {
      if (!s.pending_grant) {
        park_for_reinit_locked(s);
        return false;
      }
      s.pending_grant = false;
      s.reinit_requested = false;
      s.replay->advance_past_reinit();
      return true;
    }
    s.reinit_requested = true;
    s.reinit_array = array;
    const bool completed = machine_.reinit().request_reinit(s.pe, array);
    if (!completed) {
      park_for_reinit_locked(s);
      return false;
    }
    s.reinit_requested = false;
    s.replay->advance_past_reinit();
    // Broadcast the grant: every waiting requester advances.
    for (const auto& other : shards_) {
      Shard& t = *other;
      if (t.pe == s.pe || !t.reinit_requested || t.reinit_array != array) {
        continue;
      }
      t.pending_grant = true;
      if (t.state == State::kParked) unpark_locked(t, w);
    }
    idle_cv_.notify_all();
    return true;
  }

  void park_for_reinit_locked(Shard& s) {
    // A stale cell wake must not release a §5 barrier; the only legal
    // unblock is the grant (pending_grant).
    s.wake_pending = false;
    s.state = State::kParked;
    s.parked_for_input = false;
    ++parked_;
    ++parks_;
    scheduler_metrics().parks.add(1);
    obs::instant_event("runtime", "park", "pe", s.pe);
    check_deadlock_locked();
  }

  void on_publish() {
    if (!input_waiters_.load(std::memory_order_relaxed)) return;
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      wake_input_parked_locked();
    }
    idle_cv_.notify_all();
  }

  void wake_input_parked_locked() {
    for (const auto& s : shards_) {
      if (s->state == State::kParked && s->parked_for_input) {
        unpark_locked(*s, s->last_worker);
      }
    }
    input_waiters_.store(false, std::memory_order_relaxed);
  }

  /// Every shard is in exactly one state, so parked + done == all means
  /// nothing is ready or running: with the producer finished, that
  /// quiescence is the machine-level read-before-write deadlock.
  void check_deadlock_locked() {
    scheduler_metrics().quiescence_checks.add(1);
    if (first_error_ || abort_) return;
    if (!producer_done_.load(std::memory_order_relaxed)) return;
    if (done_ == shards_.size()) return;
    if (parked_ + done_ < shards_.size()) return;
    first_error_ = std::make_exception_ptr(DeadlockError(
        "dataflow machine quiesced with unfinished PEs: the program "
        "reads a value before sequential order produces it (not legal "
        "single assignment)"));
    abort_.store(true, std::memory_order_relaxed);
    idle_cv_.notify_all();
  }

  void record_error(std::exception_ptr error) {
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      if (!first_error_) first_error_ = std::move(error);
      abort_.store(true, std::memory_order_relaxed);
    }
    idle_cv_.notify_all();
  }

  const CompiledProgram& compiled_;
  Machine& machine_;
  unsigned workers_;
  ThreadPool& pool_;
  StreamSet set_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex state_mutex_;
  std::condition_variable idle_cv_;
  std::vector<std::deque<Shard*>> queues_;  // guarded by state_mutex_
  std::uint32_t parked_ = 0;                // guarded by state_mutex_
  std::uint32_t done_ = 0;                  // guarded by state_mutex_
  std::exception_ptr first_error_;          // guarded by state_mutex_
  std::atomic<bool> producer_done_{false};
  std::atomic<bool> abort_{false};
  std::atomic<bool> input_waiters_{false};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> dispatches_{0};
};

}  // namespace

DataflowStats run_dataflow_sharded(const CompiledProgram& compiled,
                                   Machine& machine,
                                   const ShardRuntimeOptions& options) {
  if (machine.config().count_partial_page_refetch) {
    // The §4-footnote extension makes cache admission depend on the write
    // interleaving itself, which only the serial order pins down; routing
    // here (not just in run_dataflow) keeps the byte-identical contract
    // enforceable for direct callers too.  An *explicit*
    // SAPART_DATAFLOW=sharded request on such a config never reaches this
    // silent route: run_dataflow throws ConfigError first.
    return run_dataflow_serial(compiled, machine);
  }
  unsigned workers = options.workers;
  if (workers == 0) workers = shard_workers_from_env();
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  if (workers > machine.num_pes()) workers = machine.num_pes();
  if (workers == 0) workers = 1;
  ThreadPool& pool = options.pool != nullptr ? *options.pool
                                             : shard_runtime_pool();
  SimRuntime runtime(compiled, machine, workers, pool);
  return runtime.run();
}

}  // namespace sap
