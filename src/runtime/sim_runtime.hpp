// SimRuntime — the sharded parallel dataflow runtime (DESIGN.md §9).
//
// The §3 synchronization model is inherently parallel: PEs run independent
// screened instance streams and synchronize only through I-structure cells.
// This layer makes the simulated PEs real concurrency shards: each PE's
// stream replays on ThreadPool workers while the sequential trace pass is
// still producing it (a streaming producer/consumer pipeline), with a
// work-stealing scheduler that parks suspended shards and re-arms them on
// the defining write.
//
// Determinism is by construction, not by luck:
//  * each shard's accounting (its PE counters, cache, and a private
//    NetworkBuffer) depends only on that shard's own fixed stream order —
//    cells are write-once, ownership is a pure function, and §5 re-init is
//    a full barrier — so no tally depends on cross-shard timing;
//  * after the run, shard buffers merge into the shared Network in PE-id
//    order, giving a SimulationResult byte-identical to the serial
//    scheduler's for any worker count (the differential tests enforce it).
//
// An illegal program (read before sequential order produces the value)
// quiesces the shard set with unfinished streams; the scheduler detects
// the quiescence and throws the same DeadlockError as the serial oracle.
#pragma once

#include "core/dataflow_interpreter.hpp"
#include "core/simulator.hpp"
#include "support/thread_pool.hpp"

namespace sap {

struct ShardRuntimeOptions {
  /// Replay worker count (the caller participates as one of them after the
  /// trace pass finishes).  0 = SAPART_SHARD_WORKERS, else one per
  /// hardware thread; always clamped to [1, num_pes].
  unsigned workers = 0;

  /// Pool the helper workers are borrowed from; nullptr = the process-wide
  /// shard_runtime_pool().  The runtime never blocks on pool capacity: the
  /// calling thread alone can finish any run, so a saturated pool degrades
  /// to (near-)serial execution instead of deadlocking.
  ThreadPool* pool = nullptr;
};

/// Worker-count override from SAPART_SHARD_WORKERS (0 when unset; throws
/// ConfigError on invalid values, same contract as SAPART_WORKERS).
unsigned shard_workers_from_env();

/// Process-wide helper pool for shard replay (lazily constructed, sized to
/// the hardware).  Distinct from bench::pool(): sweeps may fan Simulator
/// runs across their own pool while each run's shards fan out here.
ThreadPool& shard_runtime_pool();

/// Executes the program on the machine (arrays must be materialized) with
/// the sharded runtime.  Byte-identical SimulationResult to
/// run_dataflow_serial for any worker count.  Configs with
/// `count_partial_page_refetch` are routed to the serial scheduler here
/// (not just in run_dataflow): that extension's cache admission depends on
/// the write interleaving itself, which only the serial order pins down.
DataflowStats run_dataflow_sharded(const CompiledProgram& compiled,
                                   Machine& machine,
                                   const ShardRuntimeOptions& options = {});

}  // namespace sap
