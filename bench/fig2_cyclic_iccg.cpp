// Figure 2 — "Cyclic access pattern. Caching and page size can reduce the
// percentage of remote reads significantly."  ICCG (LFK 2): the write
// index advances half as fast as the read index, so uncached accesses jump
// from page to page (most remote), while the cache collapses each page's
// touches to a single fetch.
//
// Reproduction note (EXPERIMENTS.md): the no-cache curve rises towards
// ~100% exactly as in the paper; our cached curve is low-and-flat rather
// than visibly decreasing — the "nearly perfect" end state matches, the
// slope at small PE counts does not.
#include "bench_common.hpp"
#include "kernels/livermore.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Figure 2: cyclic access (ICCG, LFK 2) — remote reads vs PEs.");
  bench::print_header(
      "Figure 2 — Cyclic Access Pattern (ICCG, LFK 2)",
      "X(i) = X(k) - V(k)*X(k-1) - V(k+1)*X(k+1); i advances at half the "
      "rate of k");

  const CompiledProgram prog = build_k2_iccg();
  const auto series = figure_series(prog, bench::paper_config(),
                                    {1, 2, 4, 8, 16, 32}, {32, 64},
                                    &bench::pool());
  bench::emit_series("fig2", series, "PEs",
                     "ICCG: % remote reads vs PEs");

  std::cout << "paper: no-cache rises to ~100%; cache 'nearly perfect' at "
               "high PE counts\n"
            << "ours:  no-cache " << TextTable::num(series[2].y_at(2), 1)
            << "% -> " << TextTable::num(series[2].y_at(32), 1)
            << "%; cache stays <= "
            << TextTable::num(series[0].max_y(), 1) << "%\n";
  return 0;
}
