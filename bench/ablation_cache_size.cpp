// Ablation A2 — §7.1.4/§9: "Increasing the cache size will help [RD] by
// allowing a complete cycle to reside in the cache."  Remote fraction vs
// cache capacity for the Random-class kernels, with a Skewed control.
#include "bench_common.hpp"
#include "kernels/livermore.hpp"

int main() {
  using namespace sap;
  bench::print_header(
      "Ablation A2 — Cache Size for the Random Class",
      "% reads remote vs per-PE cache capacity (elements), 16 PEs, ps 32");

  const std::vector<std::int64_t> sizes = {0,   64,   128,  256,
                                           512, 1024, 2048, 4096};
  std::vector<SweepSeries> series;
  for (const char* id : {"k06_glr", "k08_adi", "k21_matmul", "k01_hydro"}) {
    series.push_back(sweep_cache_sizes(build_kernel(id),
                                       bench::paper_config().with_pes(16),
                                       sizes, id, remote_read_percent()));
  }
  bench::emit_series("ablation_cache_size", series, "cache elements",
                     "Remote reads vs cache size");

  std::cout << "paper: RD 'can be overcome by larger cache sizes'; "
               "SD saturates immediately\n"
            << "ours:  GLR " << TextTable::num(series[0].y_at(256), 1)
            << "% @256 -> " << TextTable::num(series[0].y_at(4096), 1)
            << "% @4096; hydro flat at "
            << TextTable::num(series[3].y_at(256), 1) << "%\n";
  return 0;
}
