// Ablation A2 — §7.1.4/§9: "Increasing the cache size will help [RD] by
// allowing a complete cycle to reside in the cache."  Remote fraction vs
// cache capacity for the Random-class kernels, with a Skewed control.
#include "bench_common.hpp"
#include "kernels/livermore.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Ablation A2: cache capacity sweep for the Random class.");
  bench::print_header(
      "Ablation A2 — Cache Size for the Random Class",
      "% reads remote vs per-PE cache capacity (elements), 16 PEs, ps 32");

  const std::vector<std::int64_t> sizes = {0,   64,   128,  256,
                                           512, 1024, 2048, 4096};
  // One batch over the kernels x sizes cross-product, one series per row.
  const std::vector<const char*> ids = {"k06_glr", "k08_adi", "k21_matmul",
                                        "k01_hydro"};
  std::vector<CompiledProgram> programs;
  programs.reserve(ids.size());
  for (const char* id : ids) programs.push_back(build_kernel(id));
  std::vector<MachineConfig> configs;
  configs.reserve(sizes.size());
  for (const std::int64_t size : sizes) {
    configs.push_back(bench::paper_config().with_pes(16).with_cache(size));
  }
  const SweepGrid grid = sweep_grid(programs, configs, &bench::pool());
  const std::vector<SweepSeries> series =
      grid_series(grid, {ids.begin(), ids.end()},
                  {sizes.begin(), sizes.end()}, remote_read_percent());
  bench::emit_series("ablation_cache_size", series, "cache elements",
                     "Remote reads vs cache size");

  std::cout << "paper: RD 'can be overcome by larger cache sizes'; "
               "SD saturates immediately\n"
            << "ours:  GLR " << TextTable::num(series[0].y_at(256), 1)
            << "% @256 -> " << TextTable::num(series[0].y_at(4096), 1)
            << "% @4096; hydro flat at "
            << TextTable::num(series[3].y_at(256), 1) << "%\n";
  return 0;
}
