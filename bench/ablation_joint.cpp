// Ablation A9 — the joint per-array assignment advisor against the best
// uniform (scalar beam) answer.
//
// PR 9 widened the machine from one global partition scheme to a per-array
// assignment (DESIGN.md §14); this ablation measures what the coordinate
// descent over the array→scheme vector buys on top of the scalar beam.
// For every kernel in the registry — plus two mixed-shape synthetics
// designed so that no uniform scheme can win (disjoint array groups with
// opposing alignment) — we report the measured remote-read fraction under
// the paper's modulo default, under the scalar beam's uniform pick, and
// under the joint strategy's per-array pick.  A single advise() call per
// kernel produces all three tiers: the joint search runs the scalar beam
// first and carries its measured candidates into the joint ranking, so
// "beam" here is exactly the uniform tier the joint pick must never lose
// to (by construction).
//
// The emitted BENCH_ablation_joint.json is deterministic — measured
// remote fractions, not timings — so tools/bench_diff.py compares it
// exactly, on any machine, against the committed repo-root baseline.
#include <functional>
#include <string>
#include <vector>

#include "advisor/advisor.hpp"
#include "bench_common.hpp"
#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"
#include "support/text_table.hpp"

namespace {

struct JointRow {
  std::string id;
  std::string klass;
  bool mixed = false;  // synthetic designed for a strict heterogeneity win
  std::function<sap::CompiledProgram()> build;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Ablation A9: the joint per-array assignment advisor vs the "
              "scalar beam over the kernel registry plus two mixed-shape "
              "synthetics where no uniform scheme wins.");
  bench::print_header(
      "Ablation A9 — Joint per-array assignment vs uniform beam",
      "measured remote read fraction at 16 PEs, 256-element cache");

  const MachineConfig base = bench::paper_config().with_pes(16);
  AdvisorOptions joint_options;
  joint_options.strategy = AdvisorStrategy::kJoint;
  joint_options.page_sizes = {16, 32, 64};
  joint_options.beam_width = 4;
  joint_options.measurement_budget = 16;
  joint_options.joint_measurement_budget = 24;

  std::vector<JointRow> rows;
  for (const KernelSpec& spec : livermore_kernels()) {
    rows.push_back(
        {spec.id, to_string(spec.paper_class), false, spec.build});
  }
  // The synthetics' skew is a multiple of num_pes * max page size
  // (16 * 256 = 4096) and n a power-of-two multiple of it, so the designed
  // conflict survives every page-size move the beam can make: the skew
  // stays modulo-invisible and the rate-k group stays block-aligned at any
  // power-of-two page size up to the cache limit.
  const std::int64_t mixed_n = 16384;
  const std::int64_t mixed_skew = 4096;
  rows.push_back({"syn_mixed_skew_rate", "mixed", true, [=] {
                    return make_mixed_skew_vs_rate(mixed_n, mixed_skew);
                  }});
  rows.push_back({"syn_mixed_multigroup", "mixed", true, [=] {
                    return make_mixed_multigroup(mixed_n, mixed_skew);
                  }});

  TextTable table({"kernel", "class", "modulo", "beam", "joint",
                   "joint pick", "vs beam"});
  int joint_wins = 0;
  int joint_ties = 0;
  int mixed_strict_wins = 0;
  bool never_worse = true;
  for (const JointRow& row : rows) {
    const CompiledProgram program = row.build();
    const AdvisorReport report =
        advise(program, base, joint_options, &bench::pool());
    const double modulo = report.baseline()->measured_remote_fraction;
    // The uniform tier: the scalar beam's candidates ride along in the
    // joint report with their measured numbers, so the best validated
    // candidate without a per-array assignment IS the beam's pick.
    double beam = modulo;
    for (const AdvisorCandidate& c : report.candidates) {
      if (c.validated && c.config.per_array.empty() &&
          c.measured_remote_fraction < beam) {
        beam = c.measured_remote_fraction;
      }
    }
    const AdvisorCandidate& joint_pick = report.best();
    const double joint = joint_pick.measured_remote_fraction;
    std::string verdict;
    if (joint < beam) {
      verdict = "beats";
      ++joint_wins;
      if (row.mixed) ++mixed_strict_wins;
    } else if (joint == beam) {
      verdict = "ties";
      ++joint_ties;
    } else {
      verdict = "WORSE";  // must never happen: the joint ranking contains
                          // the scalar beam's measured candidates
      never_worse = false;
    }
    table.add_row({row.id, row.klass, TextTable::pct(modulo),
                   TextTable::pct(beam), TextTable::pct(joint),
                   joint_pick.label(), verdict});
  }
  std::cout << table.to_string() << "\njoint beats the uniform beam on "
            << joint_wins << "/" << rows.size() << " workloads, ties "
            << joint_ties
            << "; strictly better on " << mixed_strict_wins
            << "/2 mixed-shape synthetics (never worse by construction)\n";
  bench::emit_table("ablation_joint", table);
  return never_worse && mixed_strict_wins == 2 ? 0 : 1;
}
