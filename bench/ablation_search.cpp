// Ablation A8 — the beam-search advisor against the enumerating advisor.
//
// §9 frames scheme selection as the compiler's job; PR 2 automated it
// with a fixed-order enumeration, and this ablation measures what the
// guided search over the widened mapping space (DESIGN.md §11) buys on
// top.  For every kernel in the registry we report the measured
// remote-read fraction under the paper's modulo default, under the
// enumerate strategy's pick, and under the beam strategy's pick — both
// strategies with identical axes (page sizes 16/32/64, block-cyclic
// blocks 2/4, the paper's 256-element cache) so the delta is purely the
// search: the beam seeds from the enumerator's validated set (never
// worse by construction) and then walks past the configured axes with
// doubling/halving block and page-size moves.
//
// The emitted BENCH_ablation_search.json is deterministic — measured
// remote fractions, not timings — so tools/bench_diff.py compares it
// exactly, on any machine, against the committed repo-root baseline.
#include "advisor/advisor.hpp"
#include "bench_common.hpp"
#include "kernels/livermore.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Ablation A8: the beam-search advisor vs the enumerating "
              "advisor over the full kernel registry.");
  bench::print_header(
      "Ablation A8 — Search-based advisor vs enumeration",
      "measured remote read fraction at 16 PEs, 256-element cache");

  const MachineConfig base = bench::paper_config().with_pes(16);
  AdvisorOptions enumerate_options;
  enumerate_options.page_sizes = {16, 32, 64};

  AdvisorOptions beam_options = enumerate_options;
  beam_options.strategy = AdvisorStrategy::kBeam;
  beam_options.beam_width = 4;
  beam_options.measurement_budget = 16;

  TextTable table({"kernel", "class", "modulo", "enumerate", "beam",
                   "beam pick", "vs enumerate"});
  int beam_wins = 0;
  int beam_ties = 0;
  for (const KernelSpec& spec : livermore_kernels()) {
    const CompiledProgram program = spec.build();
    const AdvisorReport enumerated =
        advise(program, base, enumerate_options, &bench::pool());
    const AdvisorReport searched =
        advise(program, base, beam_options, &bench::pool());
    const double modulo = enumerated.baseline()->measured_remote_fraction;
    const double enum_pick = enumerated.best().measured_remote_fraction;
    const AdvisorCandidate& beam_pick = searched.best();
    const double beam = beam_pick.measured_remote_fraction;
    std::string verdict;
    if (beam < enum_pick) {
      verdict = "beats";
      ++beam_wins;
    } else if (beam == enum_pick) {
      verdict = "ties";
      ++beam_ties;
    } else {
      verdict = "WORSE";  // must never happen: the beam measures the
                          // enumerator's validated set first
    }
    table.add_row({spec.id, to_string(spec.paper_class),
                   TextTable::pct(modulo), TextTable::pct(enum_pick),
                   TextTable::pct(beam), beam_pick.label(), verdict});
  }
  const std::size_t kernels = livermore_kernels().size();
  std::cout << table.to_string() << "\nbeam beats enumerate on " << beam_wins
            << "/" << kernels << " kernels, ties " << beam_ties
            << " (never worse: the beam's measured set always contains the "
            << "enumerator's validated set)\n";
  bench::emit_table("ablation_search", table);
  return beam_wins + beam_ties == static_cast<int>(kernels) ? 0 : 1;
}
