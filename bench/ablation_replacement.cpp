// Ablation A4 — does the paper's LRU choice (§4: "we chose a
// least-recently-used page replacement strategy") matter?  LRU vs FIFO vs
// random victim selection on one kernel per class.
#include "bench_common.hpp"
#include "kernels/livermore.hpp"
#include "support/text_table.hpp"

int main() {
  using namespace sap;
  bench::print_header(
      "Ablation A4 — Cache Replacement Policy",
      "remote read fraction at 16 PEs, ps 32, 256-element cache");

  TextTable table({"kernel", "class", "LRU", "FIFO", "random"});
  for (const char* id : {"k01_hydro", "k02_iccg", "k18_hydro2d", "k06_glr",
                         "k08_adi", "k21_matmul"}) {
    const auto& spec = kernel_by_id(id);
    const CompiledProgram prog = spec.build();
    std::vector<std::string> row{spec.id, to_string(spec.paper_class)};
    for (const auto policy : {ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
                              ReplacementPolicy::kRandom}) {
      const Simulator sim(
          bench::paper_config().with_pes(16).with_replacement(policy));
      row.push_back(TextTable::pct(sim.run(prog).remote_read_fraction()));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.to_string()
            << "\nSD/CD loops have so much spatial locality that any policy "
               "works; only the thrashing RD loops separate the policies "
               "at all — consistent with the paper not dwelling on the "
               "choice.\n";
  return 0;
}
