// Ablation A4 — does the paper's LRU choice (§4: "we chose a
// least-recently-used page replacement strategy") matter?  LRU vs FIFO vs
// random victim selection on one kernel per class.
#include "bench_common.hpp"
#include "kernels/livermore.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Ablation A4: cache replacement policy (LRU vs FIFO vs Random).");
  bench::print_header(
      "Ablation A4 — Cache Replacement Policy",
      "remote read fraction at 16 PEs, ps 32, 256-element cache");

  // One job per (kernel, policy) pair, fanned as a single batch.
  const std::vector<const char*> ids = {"k01_hydro", "k02_iccg",
                                        "k18_hydro2d", "k06_glr",
                                        "k08_adi", "k21_matmul"};
  const std::vector<ReplacementPolicy> policies = {
      ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
      ReplacementPolicy::kRandom};
  std::vector<CompiledProgram> programs;
  programs.reserve(ids.size());
  for (const char* id : ids) programs.push_back(kernel_by_id(id).build());

  std::vector<MachineConfig> configs;
  configs.reserve(policies.size());
  for (const auto policy : policies) {
    configs.push_back(bench::paper_config().with_pes(16).with_replacement(policy));
  }
  const SweepGrid grid = sweep_grid(programs, configs, &bench::pool());

  TextTable table({"kernel", "class", "LRU", "FIFO", "random"});
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const auto& spec = kernel_by_id(ids[k]);
    std::vector<std::string> row{spec.id, to_string(spec.paper_class)};
    for (std::size_t p = 0; p < policies.size(); ++p) {
      row.push_back(TextTable::pct(grid.at(k, p).remote_read_fraction()));
    }
    table.add_row(std::move(row));
  }
  std::cout << table.to_string()
            << "\nSD/CD loops have so much spatial locality that any policy "
               "works; only the thrashing RD loops separate the policies "
               "at all — consistent with the paper not dwelling on the "
               "choice.\n";
  bench::emit_table("ablation_replacement", table);
  return 0;
}
