// Figure 3 — "Cyclic and skewed access pattern combination. Exhibits
// excellent results aided further by caching."  2-D Explicit
// Hydrodynamics Fragment (LFK 18): skewed along the inner j sweep, cyclic
// across the outer k sweep revisiting the same page set.
//
// Paper shape: no-cache flat around the 8% axis top; cached curve
// *decreases* as PEs grow (each PE's revisited page set shrinks until it
// fits its 8 cache frames).
#include "bench_common.hpp"
#include "kernels/livermore.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Figure 3: cyclic+skewed access (2-D Explicit Hydro, LFK 18) — remote reads vs PEs.");
  bench::print_header(
      "Figure 3 — Cyclic + Skewed Pattern (2-D Explicit Hydro, LFK 18)",
      "ZA(j,k) = f(ZP/ZQ/ZR/ZM at (j-1, k+1) offsets); j inner, k = 2..6");

  const CompiledProgram prog = build_k18_explicit_hydro_2d();
  const auto series = figure_series(prog, bench::paper_config(),
                                    {1, 2, 4, 8, 16, 32}, {32, 64},
                                    &bench::pool());
  bench::emit_series("fig3", series, "PEs",
                     "2-D Explicit Hydro: % remote reads vs PEs");

  std::cout << "paper: no-cache ~8% flat; cached decreasing with PEs\n"
            << "ours:  no-cache " << TextTable::num(series[2].y_at(4), 1)
            << "% flat; cache " << TextTable::num(series[0].y_at(4), 2)
            << "% @4 PEs -> " << TextTable::num(series[0].y_at(32), 2)
            << "% @32 PEs\n";
  return 0;
}
