// Table 1 (the paper's §7.1 class assignments, presented as prose): every
// implemented Livermore kernel with its paper class, our static
// classification, the sweep-derived empirical classification, and the
// measured remote fractions at 8 and 32 PEs with/without the cache.
#include "bench_common.hpp"
#include "core/empirical_classifier.hpp"
#include "kernels/livermore.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Table 1: access-class assignments — paper vs static vs empirical.");
  bench::print_header(
      "Table 1 — Access-Class Assignments (paper §7.1)",
      "paper class vs static classifier vs empirical classifier; remote% "
      "at 8/32 PEs, ps 32, 256-element cache");

  TextTable table({"kernel", "title", "paper", "static", "cond", "empirical",
                   "%rem@8 (cache)", "%rem@8 (none)", "%rem@32 (cache)"});
  int agreements = 0;
  for (const auto& spec : livermore_kernels()) {
    const CompiledProgram prog = spec.build();
    const auto static_class = classify_program(prog.program, prog.sema);
    const auto empirical = classify_empirical(prog, bench::paper_config());

    const Simulator cached8(bench::paper_config().with_pes(8));
    const Simulator nocache8(bench::paper_config().with_pes(8).with_cache(0));
    const Simulator cached32(bench::paper_config().with_pes(32));

    table.add_row({spec.id, spec.title, to_string(spec.paper_class),
                   to_string(static_class.cls),
                   static_class.conditional() ? "yes" : "-",
                   to_string(empirical.cls),
                   TextTable::pct(cached8.run(prog).remote_read_fraction()),
                   TextTable::pct(nocache8.run(prog).remote_read_fraction()),
                   TextTable::pct(cached32.run(prog).remote_read_fraction())});
    if (static_class.cls == spec.paper_class &&
        empirical.cls == spec.paper_class) {
      ++agreements;
    }
  }
  std::cout << table.to_string() << "\n"
            << agreements << "/" << livermore_kernels().size()
            << " kernels: paper = static = empirical\n";
  bench::emit_table("table1", table);
  return 0;
}
