// Shared output helpers for the figure/table bench binaries.
//
// Every binary prints: a header naming the reproduced artifact, the series
// table, an ASCII chart of the same data, and (if SAPART_CSV_DIR is set in
// the environment) a machine-readable CSV.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "stats/report.hpp"
#include "support/text_table.hpp"
#include "support/thread_pool.hpp"

namespace sap::bench {

/// Shared worker pool for every bench driver.  Sized by SAPART_WORKERS
/// when set (0 or unset: one worker per hardware thread).  Sweeps are
/// deterministic for any worker count, so the knob only affects speed.
inline ThreadPool& pool() {
  static ThreadPool shared([] {
    if (const char* env = std::getenv("SAPART_WORKERS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<unsigned>(parsed);
    }
    return 0u;
  }());
  return shared;
}

inline void print_header(const std::string& artifact,
                         const std::string& description) {
  std::cout << "==================================================\n"
            << artifact << "\n"
            << description << "\n"
            << "==================================================\n";
}

inline void emit_series(const std::string& artifact_id,
                        const std::vector<SweepSeries>& series,
                        const std::string& x_header,
                        const std::string& chart_title) {
  std::cout << series_table(series, x_header, /*as_percent=*/false) << "\n"
            << series_chart(series, chart_title, x_header, "% reads remote")
            << "\n";
  if (const char* dir = std::getenv("SAPART_CSV_DIR")) {
    const std::string path = std::string(dir) + "/" + artifact_id + ".csv";
    std::ofstream out(path);
    if (out) {
      series_csv(out, series, x_header);
      std::cout << "[csv written to " << path << "]\n";
    }
  }
}

/// The paper's machine: page size 32, 256-element LRU cache, modulo
/// partitioning (§6).
inline MachineConfig paper_config() {
  MachineConfig config;
  config.page_size = 32;
  config.cache_elements = 256;
  return config;
}

}  // namespace sap::bench
