// Shared output helpers for the figure/table bench binaries.
//
// Every binary prints: a header naming the reproduced artifact, the series
// table, an ASCII chart of the same data, and machine-readable copies —
// CSV when SAPART_CSV_DIR is set in the environment, JSON when the driver
// is invoked with `--json <dir>` (one BENCH_<artifact>.json per emitted
// artifact, for the perf trajectory).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/bytecode.hpp"
#include "core/dataflow_interpreter.hpp"
#include "core/sweep.hpp"
#include "obs/trace.hpp"
#include "runtime/sim_runtime.hpp"
#include "stats/json.hpp"
#include "stats/report.hpp"
#include "support/error.hpp"
#include "support/text_table.hpp"
#include "support/thread_pool.hpp"

namespace sap::bench {

/// Directory for --json output; empty when the flag was not given.
inline std::string& json_dir() {
  static std::string dir;
  return dir;
}

/// Usage text shared by every driver: flags, environment knobs, and the
/// exit-code contract (0 = success; 2 = usage/configuration error; any
/// other nonzero exit is a fatal error inside the run itself).
inline void print_usage(std::ostream& out, const char* prog,
                        std::string_view description) {
  out << "usage: " << prog << " [--json <dir>] [--trace <path>] [--help]\n";
  if (!description.empty()) out << description << '\n';
  out << "\nflags:\n"
         "  --json <dir>  also write BENCH_<artifact>.json files into <dir>\n"
         "                (the directory is created if missing)\n"
         "  --trace <path>  write a Chrome trace-event JSON profile of the\n"
         "                run to <path> at exit (load in Perfetto or\n"
         "                chrome://tracing; overrides SAPART_TRACE).\n"
         "                Instrumentation never changes results.\n"
         "  --help        print this help and exit\n"
         "\nenvironment:\n"
         "  SAPART_WORKERS  sweep worker-pool size (default: one per\n"
         "                  hardware thread; zero/negative/malformed abort)\n"
         "  SAPART_EVAL     expression engine: 'bytecode' (default) or\n"
         "                  'tree' (the reference tree walk)\n"
         "  SAPART_BYTECODE_OPT  bytecode optimizer: 'on' (default,\n"
         "                  superinstruction fusion + index hoisting) or\n"
         "                  'off' (the straight-line compile, a second\n"
         "                  oracle)\n"
         "  SAPART_DATAFLOW dataflow scheduler: 'sharded' (default,\n"
         "                  parallel shard runtime) or 'serial' (the\n"
         "                  round-robin oracle)\n"
         "  SAPART_SHARD_WORKERS  shard replay worker count (default: one\n"
         "                  per hardware thread, capped at the PE count)\n"
         "  SAPART_CSV_DIR  also write <artifact>.csv files there\n"
         "  SAPART_TRACE    write the Chrome trace-event profile to this\n"
         "                  path at exit (--trace wins when both are given)\n"
         "  SAPART_METRICS  write the merged metrics registry (JSON, see\n"
         "                  docs/TRACE_FORMAT.md) to this path at exit\n"
         "\nexit codes:\n"
         "  0  success\n"
         "  2  usage error, an invalid SAPART_* value, or an\n"
         "     unwritable --json destination\n"
         "  other nonzero  fatal error during the run (uncaught exception)\n";
}

/// Parses the shared driver arguments.  Call first thing in main:
///
///   int main(int argc, char** argv) {
///     sap::bench::init(argc, argv, "one-line driver description");
///     ...
///   }
///
/// Flags: `--json <dir>` — also write BENCH_<artifact>.json files there
/// (creating the directory when missing); `--help` — usage + exit codes.
inline void init(int argc, char** argv, std::string_view description = "") {
  std::string trace_flag;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout, argv[0], description);
      std::exit(0);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_flag = argv[++i];
    } else if (arg == "--trace") {
      std::cerr << "usage: " << argv[0]
                << " [--json <dir>] [--trace <path>] [--help]\n"
                << "--trace is missing its path operand\n";
      std::exit(2);
    } else if (arg == "--json" && i + 1 < argc) {
      json_dir() = argv[++i];
      // Create the destination (every driver, one place) and fail fast on
      // an unwritable one, not after the (possibly expensive) run has
      // already completed.
      std::error_code ec;
      std::filesystem::create_directories(json_dir(), ec);
      if (ec) {
        std::cerr << "--json: cannot create directory '" << json_dir()
                  << "': " << ec.message() << '\n';
        std::exit(2);
      }
      const std::string probe_path = json_dir() + "/.bench_json_probe";
      std::ofstream probe(probe_path);
      if (!probe) {
        std::cerr << "--json: cannot write to directory '" << json_dir()
                  << "'\n";
        std::exit(2);
      }
      probe.close();
      std::remove(probe_path.c_str());
    } else if (arg == "--json") {
      std::cerr << "usage: " << argv[0]
                << " [--json <dir>] [--trace <path>] [--help]\n"
                << "--json is missing its directory operand\n";
      std::exit(2);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--json <dir>] [--trace <path>] [--help]\n"
                << "unrecognized argument: " << arg << '\n';
      std::exit(2);
    }
  }
  // Validate the SAPART_* knobs after argument parsing (so --help stays
  // reachable with a mistyped value), but before the run, so a config typo
  // is the documented exit 2 and not a ConfigError escaping main mid-run
  // (SAPART_WORKERS gets the same treatment in pool()).
  try {
    eval_engine_from_env();
  } catch (const ConfigError& e) {
    std::cerr << "SAPART_EVAL: " << e.what() << '\n';
    std::exit(2);
  }
  try {
    bytecode_opt_from_env();
  } catch (const ConfigError& e) {
    std::cerr << "SAPART_BYTECODE_OPT: " << e.what() << '\n';
    std::exit(2);
  }
  try {
    dataflow_scheduler_from_env();
  } catch (const ConfigError& e) {
    std::cerr << "SAPART_DATAFLOW: " << e.what() << '\n';
    std::exit(2);
  }
  try {
    shard_workers_from_env();
  } catch (const ConfigError& e) {
    std::cerr << "SAPART_SHARD_WORKERS: " << e.what() << '\n';
    std::exit(2);
  }
  // Observability outputs last: the env knobs are validated (empty or
  // garbage values exit 2 like every other SAPART_* knob), then the
  // winning trace destination (--trace beats SAPART_TRACE) and the
  // metrics destination arm their atexit exporters.
  std::string trace_dest = trace_flag;
  const char* trace_knob = "--trace";
  if (trace_dest.empty()) {
    trace_knob = "SAPART_TRACE";
    try {
      if (const auto env = obs::trace_path_from_env()) trace_dest = *env;
    } catch (const ConfigError& e) {
      std::cerr << "SAPART_TRACE: " << e.what() << '\n';
      std::exit(2);
    }
  }
  if (!trace_dest.empty()) {
    try {
      obs::enable_trace_output(trace_dest);
    } catch (const ConfigError& e) {
      std::cerr << trace_knob << ": " << e.what() << '\n';
      std::exit(2);
    }
  }
  try {
    if (const auto metrics_dest = obs::metrics_path_from_env()) {
      obs::enable_metrics_output(*metrics_dest);
    }
  } catch (const ConfigError& e) {
    std::cerr << "SAPART_METRICS: " << e.what() << '\n';
    std::exit(2);
  }
}

/// Shared worker pool for every bench driver.  Sized by SAPART_WORKERS
/// when set (unset: one worker per hardware thread); zero, negative or
/// malformed values abort with a clear message rather than silently
/// falling back.  Sweeps are deterministic for any worker count, so the
/// knob only affects speed.
inline ThreadPool& pool() {
  static ThreadPool shared([] {
    try {
      return parse_worker_count(std::getenv("SAPART_WORKERS"));
    } catch (const ConfigError& e) {
      std::cerr << "SAPART_WORKERS: " << e.what() << '\n';
      std::exit(2);
    }
  }());
  return shared;
}

inline void print_header(const std::string& artifact,
                         const std::string& description) {
  std::cout << "==================================================\n"
            << artifact << "\n"
            << description << "\n"
            << "==================================================\n";
}

/// Writes <dir>/BENCH_<artifact>.json via `write(ostream&)` when --json
/// was given, reporting the path after the write lands.  The flag is an
/// explicit request, so a failure anywhere — unwritable directory, disk
/// full mid-serialization — is fatal (exit 2), never a silently missing
/// or truncated file a CI step could overlook.
template <typename WriteFn>
inline void maybe_emit_json(const std::string& artifact_id, WriteFn&& write) {
  if (json_dir().empty()) return;
  const std::string path = json_dir() + "/BENCH_" + artifact_id + ".json";
  std::ofstream out(path);
  if (out) {
    write(out);
    out.flush();
  }
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    std::exit(2);
  }
  std::cout << "[json written to " << path << "]\n";
}

inline void emit_series(const std::string& artifact_id,
                        const std::vector<SweepSeries>& series,
                        const std::string& x_header,
                        const std::string& chart_title) {
  std::cout << series_table(series, x_header, /*as_percent=*/false) << "\n"
            << series_chart(series, chart_title, x_header, "% reads remote")
            << "\n";
  if (const char* dir = std::getenv("SAPART_CSV_DIR")) {
    const std::string path = std::string(dir) + "/" + artifact_id + ".csv";
    std::ofstream out(path);
    if (out) {
      series_csv(out, series, x_header);
      std::cout << "[csv written to " << path << "]\n";
    }
  }
  maybe_emit_json(artifact_id, [&](std::ostream& json) {
    series_json(json, artifact_id, series, x_header);
  });
}

/// JSON twin of a table-shaped artifact (the table/ablation drivers).
inline void emit_table(const std::string& artifact_id,
                       const std::vector<std::string>& columns,
                       const std::vector<std::vector<std::string>>& rows) {
  maybe_emit_json(artifact_id, [&](std::ostream& json) {
    table_json(json, artifact_id, columns, rows);
  });
}

inline void emit_table(const std::string& artifact_id,
                       const TextTable& table) {
  emit_table(artifact_id, table.headers(), table.rows());
}

/// The paper's machine: page size 32, 256-element LRU cache, modulo
/// partitioning (§6).
inline MachineConfig paper_config() {
  MachineConfig config;
  config.page_size = 32;
  config.cache_elements = 256;
  return config;
}

}  // namespace sap::bench
