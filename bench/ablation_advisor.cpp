// Ablation A7 — the partition advisor against the fixed schemes.
//
// §9 asks for compiler-selectable partitioning; the advisor automates the
// choice.  For every kernel (plus a synthetic per class) we report the
// measured remote-read fraction under the paper's fixed modulo scheme,
// under a fixed block ("division") scheme, and under whatever the advisor
// recommends — all at 16 PEs with the paper's 256-element cache.  The
// advisor must match or beat modulo on every row (it always validates the
// modulo baseline, so this holds by construction; the integration test
// enforces it on the fig1–fig5 workloads).
#include "advisor/advisor.hpp"
#include "bench_common.hpp"
#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Ablation A7: the partition advisor vs the fixed schemes.");
  bench::print_header(
      "Ablation A7 — Partition Advisor vs fixed schemes",
      "measured remote read fraction at 16 PEs, 256-element cache");

  struct Workload {
    std::string name;
    std::string cls;
    CompiledProgram program;
  };
  std::vector<Workload> workloads;
  for (const char* id : {"k01_hydro", "k02_iccg", "k05_tridiag", "k06_glr",
                         "k08_adi", "k14_pic1d", "k18_hydro2d", "k21_matmul"}) {
    const KernelSpec& spec = kernel_by_id(id);
    workloads.push_back({spec.id, to_string(spec.paper_class), spec.build()});
  }
  workloads.push_back({"syn_matched", "matched", make_matched(4096)});
  workloads.push_back({"syn_skewed11", "skewed", make_skewed(4096, 11)});
  workloads.push_back({"syn_cyclic2", "cyclic", make_cyclic(4096, 2)});
  workloads.push_back(
      {"syn_random", "random", make_random_permutation(4096, 0x5eed)});

  const MachineConfig base = bench::paper_config().with_pes(16);
  AdvisorOptions options;
  options.page_sizes = {16, 32, 64};

  // The fixed block reference, measured for every workload in one batch.
  // The fixed modulo reference needs no extra runs: advise() always
  // validates exactly that configuration as its baseline.
  std::vector<SweepJob> jobs;
  for (const Workload& w : workloads) {
    jobs.push_back({&w.program, base.with_partition(PartitionKind::kBlock)});
  }
  const std::vector<SimulationResult> fixed =
      parallel_sweep_results(jobs, &bench::pool());

  TextTable table({"workload", "class", "modulo", "block", "advised",
                   "advised scheme", "vs modulo"});
  int advised_wins = 0;
  int advised_ties = 0;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    // Candidate validation fans across the same pool inside advise().
    const AdvisorReport report =
        advise(w.program, base, options, &bench::pool());
    const double modulo = report.baseline()->measured_remote_fraction;
    const double block = fixed[i].remote_read_fraction();
    const AdvisorCandidate& pick = report.best();
    const double advised = pick.measured_remote_fraction;
    std::string verdict;
    if (advised < modulo) {
      verdict = "beats";
      ++advised_wins;
    } else {
      verdict = "ties";  // never worse: modulo is always validated
      ++advised_ties;
    }
    table.add_row({w.name, w.cls, TextTable::pct(modulo),
                   TextTable::pct(block), TextTable::pct(advised),
                   pick.label(), verdict});
  }
  std::cout << table.to_string() << "\nadvised beats modulo on "
            << advised_wins << "/" << workloads.size() << " workloads, ties "
            << advised_ties << " (never worse — the modulo baseline is "
            << "always in the validated set)\n";
  bench::emit_table("ablation_advisor", table);
  return 0;
}
