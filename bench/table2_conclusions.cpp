// Table 2 — the §8 Conclusions, quantified: each claim the paper states in
// prose next to the value this reproduction measures.
#include "bench_common.hpp"
#include "kernels/livermore.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Table 2: the paper's §8 conclusions, paper vs measured.");
  bench::print_header("Table 2 — Conclusions (§8), paper vs measured",
                      "paper machine: ps 32, 256-element LRU cache, modulo");

  TextTable table({"claim", "paper", "measured"});

  {  // SD loops: 1-10% remote.
    const Simulator sim(bench::paper_config().with_pes(16));
    double worst = 0.0;
    for (const char* id : {"k01_hydro", "k05_tridiag", "k07_eos",
                           "k11_first_sum", "k12_first_diff"}) {
      worst = std::max(worst, sim.run(build_kernel(id)).remote_read_fraction());
    }
    table.add_row({"SD class remote fraction", "1% to 10%",
                   "max " + TextTable::pct(worst) + " over 5 SD kernels"});
  }

  {  // Large-skew SD: 22% -> 1%.
    const CompiledProgram prog = build_k1_hydro();
    const Simulator nocache(bench::paper_config().with_pes(8).with_cache(0));
    const Simulator cached(bench::paper_config().with_pes(8));
    table.add_row(
        {"large-skew SD, cache off -> on", "22% -> 1%",
         TextTable::pct(nocache.run(prog).remote_read_fraction()) + " -> " +
             TextTable::pct(cached.run(prog).remote_read_fraction())});
  }

  {  // Most distributions < 10% with the 256-element cache.
    const Simulator sim(bench::paper_config().with_pes(16));
    int under = 0;
    int total = 0;
    for (const auto& spec : livermore_kernels()) {
      ++total;
      if (sim.run(spec.build()).remote_read_fraction() < 0.10) ++under;
    }
    table.add_row({"kernels under 10% remote w/ 256-elt cache",
                   "\"most access distributions\"",
                   std::to_string(under) + "/" + std::to_string(total)});
  }

  {  // Matched class: exactly 0%.
    const Simulator sim(bench::paper_config().with_pes(32));
    table.add_row(
        {"MD class remote fraction", "0% always",
         TextTable::pct(
             sim.run(build_kernel("k14_pic1d")).remote_read_fraction())});
  }

  {  // Load balance (writes forced equal).
    const CompiledProgram prog = build_k18_explicit_hydro_2d(400);
    const Simulator sim(bench::paper_config().with_pes(64));
    const auto result = sim.run(prog);
    table.add_row({"write imbalance at 64 PEs (max/mean)", "~1 (forced equal)",
                   TextTable::num(result.write_balance().imbalance(), 2)});
    table.add_row(
        {"local-read cv at 64 PEs", "\"comparable\" across PEs",
         TextTable::num(result.local_read_balance().coefficient_of_variation(),
                        3)});
  }

  {  // RD stays high — the documented exception.
    const Simulator sim(bench::paper_config().with_pes(16));
    table.add_row(
        {"RD class remote fraction (GLR)", "\"rather high\"",
         TextTable::pct(
             sim.run(build_kernel("k06_glr")).remote_read_fraction())});
  }

  std::cout << table.to_string();
  bench::emit_table("table2", table);
  return 0;
}
