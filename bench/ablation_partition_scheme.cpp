// Ablation A1 — §9: "our simple modulo partitioning scheme performs worse
// for certain loops than a division scheme."  Modulo vs Block ("division")
// vs BlockCyclic across one representative kernel per class.
#include "bench_common.hpp"
#include "kernels/livermore.hpp"
#include "support/text_table.hpp"

int main() {
  using namespace sap;
  bench::print_header(
      "Ablation A1 — Partition Scheme (modulo vs division vs block-cyclic)",
      "remote read fraction at 16 PEs, ps 32, 256-element cache");

  const std::vector<std::pair<std::string, PartitionKind>> schemes = {
      {"modulo", PartitionKind::kModulo},
      {"block", PartitionKind::kBlock},
      {"block-cyclic", PartitionKind::kBlockCyclic},
  };
  TextTable table(
      {"kernel", "class", "modulo", "block", "block-cyclic", "best"});
  for (const char* id : {"k14_pic1d", "k01_hydro", "k05_tridiag", "k02_iccg",
                         "k18_hydro2d", "k06_glr", "k08_adi"}) {
    const auto& spec = kernel_by_id(id);
    const CompiledProgram prog = spec.build();
    std::vector<std::string> row{spec.id, to_string(spec.paper_class)};
    double best = 1e9;
    std::string best_name;
    for (const auto& [name, kind] : schemes) {
      const Simulator sim(
          bench::paper_config().with_pes(16).with_partition(kind));
      const double fraction = sim.run(prog).remote_read_fraction();
      row.push_back(TextTable::pct(fraction));
      if (fraction < best) {
        best = fraction;
        best_name = name;
      }
    }
    row.push_back(best_name);
    table.add_row(std::move(row));
  }
  std::cout << table.to_string()
            << "\nThe §9 prediction confirmed: no scheme dominates.  Block "
               "(division) wins on skewed loops — neighbour pages land on "
               "the same PE — while modulo wins when several arrays of "
               "different sizes are accessed at matching page indices "
               "(ADI): modulo keeps page p of every array on the same PE, "
               "block does not.  Exactly the compiler-selectable choice "
               "the paper anticipates.\n";
  return 0;
}
