// Ablation A1 — §9: "our simple modulo partitioning scheme performs worse
// for certain loops than a division scheme."  Modulo vs Block ("division")
// vs BlockCyclic across one representative kernel per class.
#include "bench_common.hpp"
#include "kernels/livermore.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Ablation A1: modulo vs division vs block-cyclic partitioning.");
  bench::print_header(
      "Ablation A1 — Partition Scheme (modulo vs division vs block-cyclic)",
      "remote read fraction at 16 PEs, ps 32, 256-element cache");

  const std::vector<std::pair<std::string, PartitionKind>> schemes = {
      {"modulo", PartitionKind::kModulo},
      {"block", PartitionKind::kBlock},
      {"block-cyclic", PartitionKind::kBlockCyclic},
  };
  // One job per (kernel, scheme) pair, fanned as a single batch.
  const std::vector<const char*> ids = {"k14_pic1d", "k01_hydro",
                                        "k05_tridiag", "k02_iccg",
                                        "k18_hydro2d", "k06_glr", "k08_adi"};
  std::vector<CompiledProgram> programs;
  programs.reserve(ids.size());
  for (const char* id : ids) programs.push_back(kernel_by_id(id).build());

  std::vector<MachineConfig> configs;
  configs.reserve(schemes.size());
  for (const auto& [name, kind] : schemes) {
    configs.push_back(bench::paper_config().with_pes(16).with_partition(kind));
  }
  const SweepGrid grid = sweep_grid(programs, configs, &bench::pool());

  TextTable table(
      {"kernel", "class", "modulo", "block", "block-cyclic", "best"});
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const auto& spec = kernel_by_id(ids[k]);
    std::vector<std::string> row{spec.id, to_string(spec.paper_class)};
    double best = 1e9;
    std::string best_name;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const double fraction = grid.at(k, s).remote_read_fraction();
      row.push_back(TextTable::pct(fraction));
      if (fraction < best) {
        best = fraction;
        best_name = schemes[s].first;
      }
    }
    row.push_back(best_name);
    table.add_row(std::move(row));
  }
  std::cout << table.to_string()
            << "\nThe §9 prediction confirmed: no scheme dominates.  Block "
               "(division) wins on skewed loops — neighbour pages land on "
               "the same PE — while modulo wins when several arrays of "
               "different sizes are accessed at matching page indices "
               "(ADI): modulo keeps page p of every array on the same PE, "
               "block does not.  Exactly the compiler-selectable choice "
               "the paper anticipates.\n";
  bench::emit_table("ablation_partition_scheme", table);
  return 0;
}
