// Ablation A3 — §9: "allowing the programmer or compiler to select the
// page size might prove useful for reducing communication overhead in some
// classes of loops", balanced against §7.1.2's warning: "if the page size
// is too large, the work will not spread over a sufficient number of PEs."
// Both effects are measured: remote fraction and the number of PEs that
// actually receive work.
#include "bench_common.hpp"
#include "kernels/livermore.hpp"
#include "support/text_table.hpp"

int main() {
  using namespace sap;
  bench::print_header(
      "Ablation A3 — Page Size",
      "remote fraction and work spread vs page size, 16 PEs, 256-elt cache");

  const std::vector<std::int64_t> page_sizes = {8, 16, 32, 64, 128, 256};

  std::vector<SweepSeries> series;
  for (const char* id : {"k01_hydro", "k02_iccg", "k18_hydro2d", "k06_glr"}) {
    series.push_back(sweep_page_sizes(build_kernel(id),
                                      bench::paper_config().with_pes(16),
                                      page_sizes, id,
                                      remote_read_percent()));
  }
  bench::emit_series("ablation_page_size", series, "page size",
                     "Remote reads vs page size");

  // Work spread: PEs with at least one write (the §7.1.2 trade-off).
  TextTable spread({"page size", "hydro PEs active", "iccg PEs active"});
  for (const std::int64_t ps : page_sizes) {
    const Simulator sim(bench::paper_config().with_pes(16).with_page_size(
        ps).with_cache(256 >= ps ? 256 : ps));
    const auto count_active = [&](const char* id) {
      const auto result = sim.run(build_kernel(id));
      int active = 0;
      for (const auto& pe : result.per_pe) {
        if (pe.writes > 0) ++active;
      }
      return active;
    };
    spread.add_row({std::to_string(ps),
                    std::to_string(count_active("k01_hydro")),
                    std::to_string(count_active("k02_iccg"))});
  }
  std::cout << spread.to_string()
            << "\nLarger pages cut boundary crossings (skew cost ~ "
               "skew/page_size) but concentrate the array on fewer PEs — "
               "the compiler-selectable trade §9 anticipates.\n";
  return 0;
}
