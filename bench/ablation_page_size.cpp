// Ablation A3 — §9: "allowing the programmer or compiler to select the
// page size might prove useful for reducing communication overhead in some
// classes of loops", balanced against §7.1.2's warning: "if the page size
// is too large, the work will not spread over a sufficient number of PEs."
// Both effects are measured: remote fraction and the number of PEs that
// actually receive work.
#include "bench_common.hpp"
#include "kernels/livermore.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Ablation A3: page-size sweep.");
  bench::print_header(
      "Ablation A3 — Page Size",
      "remote fraction and work spread vs page size, 16 PEs, 256-elt cache");

  const std::vector<std::int64_t> page_sizes = {8, 16, 32, 64, 128, 256};

  // One batch over the kernels x page-sizes cross-product, one series per
  // row.
  const std::vector<const char*> series_ids = {"k01_hydro", "k02_iccg",
                                               "k18_hydro2d", "k06_glr"};
  std::vector<CompiledProgram> series_programs;
  series_programs.reserve(series_ids.size());
  for (const char* id : series_ids) {
    series_programs.push_back(build_kernel(id));
  }
  std::vector<MachineConfig> series_configs;
  series_configs.reserve(page_sizes.size());
  for (const std::int64_t ps : page_sizes) {
    series_configs.push_back(
        bench::paper_config().with_pes(16).with_page_size(ps));
  }
  const SweepGrid series_grid =
      sweep_grid(series_programs, series_configs, &bench::pool());
  const std::vector<SweepSeries> series =
      grid_series(series_grid, {series_ids.begin(), series_ids.end()},
                  {page_sizes.begin(), page_sizes.end()},
                  remote_read_percent());
  bench::emit_series("ablation_page_size", series, "page size",
                     "Remote reads vs page size");

  // Work spread: PEs with at least one write (the §7.1.2 trade-off).
  // One simulation per (kernel, page size) pair, fanned as a single batch.
  std::vector<CompiledProgram> programs;
  programs.push_back(build_kernel("k01_hydro"));
  programs.push_back(build_kernel("k02_iccg"));
  std::vector<MachineConfig> configs;
  configs.reserve(page_sizes.size());
  for (const std::int64_t ps : page_sizes) {
    configs.push_back(bench::paper_config().with_pes(16)
        .with_page_size(ps).with_cache(256 >= ps ? 256 : ps));
  }
  const SweepGrid grid = sweep_grid(programs, configs, &bench::pool());
  const auto count_active = [](const SimulationResult& result) {
    int active = 0;
    for (const auto& pe : result.per_pe) {
      if (pe.writes > 0) ++active;
    }
    return active;
  };
  TextTable spread({"page size", "hydro PEs active", "iccg PEs active"});
  for (std::size_t i = 0; i < page_sizes.size(); ++i) {
    spread.add_row({std::to_string(page_sizes[i]),
                    std::to_string(count_active(grid.at(0, i))),
                    std::to_string(count_active(grid.at(1, i)))});
  }
  std::cout << spread.to_string()
            << "\nLarger pages cut boundary crossings (skew cost ~ "
               "skew/page_size) but concentrate the array on fewer PEs — "
               "the compiler-selectable trade §9 anticipates.\n";
  return 0;
}
