// Ablation A6 — cost of the §5 host-processor re-initialization protocol:
// a time-stepped solver reusing one array, swept over PE counts and step
// counts.  Protocol messages are 2(N-1) per round (gather + broadcast);
// the question is how they compare to the data traffic they enable.
#include "bench_common.hpp"
#include "core/program_builder.hpp"
#include "machine/host_collect.hpp"
#include "support/text_table.hpp"

namespace {

sap::CompiledProgram timestep_program(std::int64_t n, std::int64_t steps) {
  using namespace sap;
  ProgramBuilder b("reinit_sweep");
  b.array("A", {n});
  b.input_array("B", {n});
  b.begin_loop("T", 1, ex_num(static_cast<double>(steps)));
  b.reinit("A");
  b.begin_loop("I", 1, ex_num(static_cast<double>(n - 11)));
  b.assign("A", {b.var("I")},
           b.at("B", {b.var("I") + 11}) * b.var("T"));  // skewed reads
  b.end_loop();
  b.end_loop();
  return b.compile();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Ablation A6: cost of the §5 re-initialization protocol.");
  bench::print_header(
      "Ablation A6 — Host-Processor Re-initialization Cost (§5)",
      "time-stepped reuse of one array; protocol vs data messages");

  // One job per (PE count, step count) pair, fanned as a single batch.
  const std::vector<std::uint32_t> pe_counts = {2, 4, 8, 16, 32, 64};
  const std::vector<std::int64_t> step_counts = {2, 8};
  std::vector<CompiledProgram> programs;
  programs.reserve(step_counts.size());
  for (const std::int64_t steps : step_counts) {
    programs.push_back(timestep_program(1024, steps));
  }
  std::vector<MachineConfig> configs;
  configs.reserve(pe_counts.size());
  for (const std::uint32_t pes : pe_counts) {
    configs.push_back(bench::paper_config().with_pes(pes));
  }
  const SweepGrid grid = sweep_grid(programs, configs, &bench::pool());

  TextTable table({"PEs", "steps", "reinit msgs", "page msgs",
                   "protocol share", "remote %"});
  for (std::size_t p = 0; p < pe_counts.size(); ++p) {
    for (std::size_t s = 0; s < step_counts.size(); ++s) {
      const std::uint32_t pes = pe_counts[p];
      const std::int64_t steps = step_counts[s];
      const auto& result = grid.at(s, p);
      const std::uint64_t data_msgs =
          result.network.messages - result.reinit_messages;
      const double share =
          result.network.messages == 0
              ? 0.0
              : static_cast<double>(result.reinit_messages) /
                    static_cast<double>(result.network.messages);
      table.add_row({std::to_string(pes), std::to_string(steps),
                     std::to_string(result.reinit_messages),
                     std::to_string(data_msgs), TextTable::pct(share),
                     TextTable::pct(result.remote_read_fraction())});
    }
  }
  std::cout << table.to_string()
            << "\nProtocol cost is 2(N-1) messages per reused array per "
               "step — linear in PEs, independent of array size, and a "
               "small share of total traffic for realistic arrays (§5's "
               "'artificial synchronization point' priced).\n\n";
  bench::emit_table("ablation_reinit", table);

  // §9's other host-processor extension: vector-to-scalar operations by
  // collecting per-PE subrange results, versus owner-computes (one PE
  // reads everything).
  std::cout << "--- vector-to-scalar via host collection (§9) ---\n";
  TextTable collect({"PEs", "collect msgs", "owner-computes msgs",
                     "collect remote reads"});
  for (const std::uint32_t pes : {4u, 16u, 64u}) {
    MachineConfig config = bench::paper_config().with_pes(pes);
    Machine gather(config);
    const ArrayId id =
        gather.arrays().declare("V", ArrayShape::vector_1based(4096));
    gather.arrays().at(id).initialize_all(1.0);
    const CollectResult collected =
        host_collect(gather, gather.arrays().at(id), CollectOp::kSum);

    Machine owner(config);
    const ArrayId id2 =
        owner.arrays().declare("V", ArrayShape::vector_1based(4096));
    owner.arrays().at(id2).initialize_all(1.0);
    for (std::int64_t i = 0; i < 4096; ++i) {
      owner.account_read(0, owner.arrays().at(id2), i);
    }
    collect.add_row({std::to_string(pes), std::to_string(collected.messages),
                     std::to_string(owner.network().stats().messages),
                     std::to_string(
                         gather.snapshot("c").totals.remote_reads)});
  }
  std::cout << collect.to_string()
            << "\nSubrange collection replaces page fetches with N-1 "
               "partial-result messages and zero remote reads — the "
               "mechanism §9 proposes for reductions.\n";
  return 0;
}
