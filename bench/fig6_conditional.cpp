// Figure 6 (ours) — conditional workloads.  The paper's Table 1 classes
// cover straight-line loop bodies; the conditional kernels (guarded
// assignments merged per the DSA translation, lazy SELECT recurrences)
// add data-dependent access densities on top.  This driver reports, per
// conditional kernel: the static class, the conditional column, measured
// remote fractions with/without cache, and the advisor's pick (with its
// probability-weighted cost model) against the paper's fixed modulo
// scheme.
#include "advisor/advisor.hpp"
#include "bench_common.hpp"
#include "kernels/livermore.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Figure 6: conditional kernels — guarded access densities, "
              "classification and advisor ranking.");
  bench::print_header(
      "Figure 6 — Conditional Control Flow (guarded kernels)",
      "IF/ELSE merged writes and lazy SELECT recurrences; advisor uses "
      "probability-weighted access summaries");

  const std::vector<std::string> ids = {"k15_flow_limiter", "k16_min_search",
                                        "k24_first_min"};
  TextTable table({"kernel", "title", "static", "cond", "%rem@8 (cache)",
                   "%rem@8 (none)", "%rem@32 (cache)", "advised", "advised %",
                   "modulo %"});
  AdvisorOptions options;
  options.page_sizes = {32, 64};
  ThreadPool& pool = bench::pool();
  int advised_no_worse = 0;
  for (const std::string& id : ids) {
    const KernelSpec& spec = kernel_by_id(id);
    const CompiledProgram prog = spec.build();
    const auto cls = classify_program(prog.program, prog.sema);

    const Simulator cached8(bench::paper_config().with_pes(8));
    const Simulator nocache8(bench::paper_config().with_pes(8).with_cache(0));
    const Simulator cached32(bench::paper_config().with_pes(32));

    const AdvisorReport report =
        advise(prog, bench::paper_config().with_pes(16), options, &pool);
    const AdvisorCandidate& best = report.best();
    const AdvisorCandidate* baseline = report.baseline();
    const double best_pct = best.remote_fraction() * 100.0;
    const double modulo_pct =
        baseline != nullptr ? baseline->remote_fraction() * 100.0 : 0.0;
    if (best_pct <= modulo_pct) ++advised_no_worse;

    table.add_row({spec.id, spec.title, to_string(cls.cls),
                   cls.conditional() ? "yes" : "-",
                   TextTable::pct(cached8.run(prog).remote_read_fraction()),
                   TextTable::pct(nocache8.run(prog).remote_read_fraction()),
                   TextTable::pct(cached32.run(prog).remote_read_fraction()),
                   best.label(), TextTable::num(best_pct, 2),
                   TextTable::num(modulo_pct, 2)});
  }
  std::cout << table.to_string() << "\n"
            << advised_no_worse << "/" << ids.size()
            << " kernels: advised partition no worse than fixed modulo\n";
  bench::emit_table("fig6", table);
  return advised_no_worse == static_cast<int>(ids.size()) ? 0 : 1;
}
