// Ablation A5 — §9's "more sophisticated simulation will better explore
// the problems of execution time and network contention": the same page
// traffic routed over four interconnects, reporting hop counts and
// hot-link contention.  Also quantifies the abstract's claim that the
// network degradation from multiprocessing is minimal for SD loops.
#include "bench_common.hpp"
#include "kernels/livermore.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Ablation A5: interconnect topology and contention.");
  bench::print_header(
      "Ablation A5 — Interconnect Topology and Contention",
      "16 PEs, ps 32, 256-element cache; per-topology message statistics");

  // One job per (kernel, topology) pair, fanned as a single batch; the
  // table rows then come back in the same deterministic order.
  const std::vector<const char*> ids = {"k01_hydro", "k02_iccg", "k06_glr"};
  const std::vector<TopologyKind> topologies = {
      TopologyKind::kCrossbar, TopologyKind::kRing, TopologyKind::kMesh2D,
      TopologyKind::kHypercube};
  std::vector<CompiledProgram> programs;
  programs.reserve(ids.size());
  for (const char* id : ids) programs.push_back(build_kernel(id));

  std::vector<MachineConfig> configs;
  configs.reserve(topologies.size());
  for (const auto topology : topologies) {
    configs.push_back(bench::paper_config().with_pes(16).with_topology(topology));
  }
  const SweepGrid grid = sweep_grid(programs, configs, &bench::pool());

  TextTable table({"kernel", "topology", "messages", "mean hops",
                   "max link load", "contention (max/mean)"});
  for (std::size_t k = 0; k < ids.size(); ++k) {
    for (std::size_t t = 0; t < topologies.size(); ++t) {
      const auto& result = grid.at(k, t);
      table.add_row({ids[k], to_string(topologies[t]),
                     std::to_string(result.network.messages),
                     TextTable::num(result.network.mean_hops(), 2),
                     std::to_string(result.max_link_load),
                     TextTable::num(result.contention_factor, 2)});
    }
  }
  std::cout << table.to_string()
            << "\nMessage counts are topology-independent (they follow the "
               "access classes); hops and hot-link load grow from crossbar "
               "to ring, mesh and hypercube sitting between — the SD "
               "kernels stay minimal on every fabric, backing the "
               "abstract's claim.\n";
  bench::emit_table("ablation_network", table);
  return 0;
}
