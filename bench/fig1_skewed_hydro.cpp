// Figure 1 — "Skewed access pattern (skew of 11). Caching is important in
// this common class."  Hydro Fragment (LFK 1): % of reads remote vs number
// of PEs, {Cache, No Cache} x {page size 32, 64}, 256-element LRU cache.
//
// Paper shape: no-cache ps 32 sits ~20% flat for every multi-PE count;
// the cache collapses it to ~1% (one page fetch per crossed boundary).
#include "bench_common.hpp"
#include "kernels/livermore.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Figure 1: skewed access (Hydro Fragment, LFK 1) — remote reads vs PEs.");
  bench::print_header(
      "Figure 1 — Skewed Access Pattern (Hydro Fragment, LFK 1)",
      "X(k) = Q + Y(k)*(R*ZX(k+10) + T*ZX(k+11)); skew 10/11 elements");

  const CompiledProgram prog = build_k1_hydro();
  const auto series = figure_series(prog, bench::paper_config(),
                                    {1, 2, 4, 8, 16, 32, 64}, {32, 64},
                                    &bench::pool());
  bench::emit_series("fig1", series, "PEs",
                     "Hydro Fragment: % remote reads vs PEs");

  const double nocache = series[2].y_at(8);
  const double cached = series[0].y_at(8);
  std::cout << "paper: ~20% without cache -> ~1% with cache (ps 32)\n"
            << "ours:  " << TextTable::num(nocache, 2) << "% -> "
            << TextTable::num(cached, 2) << "% ("
            << TextTable::num(nocache / cached, 1) << "x reduction)\n";
  return 0;
}
