// P1 — perf suite for the simulator itself, and the recorded baseline of
// the tree-walk vs bytecode statement-execution engines (core/bytecode.hpp).
//
// Three layers per fig1–fig5 workload:
//   - stmt-exec:     the sequential reference executor (no machine, no
//                    accounting) — pure statement-execution throughput,
//                    the quantity the bytecode engine exists to raise;
//   - counting-sim:  the full counting simulation on the paper machine
//                    (partitioning, page cache, network accounting);
//   - dataflow-sim:  the split-phase dataflow machine (fig1 only; the
//                    trace/replay cost dwarfs expression evaluation).
// Array materialization and machine construction are excluded from every
// timing; each measurement reports the best repetition.  Substrate
// micro-benchmarks (partition math, cache ops, SA-store ops) keep the
// pre-engine baseline comparable.
//
// `--json <dir>` writes BENCH_perf_simulator.json (docs/BENCH_FORMAT.md);
// the checked-in baseline at the repo root was produced by this driver
// from a Release build.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cache/page_cache.hpp"
#include "core/bytecode.hpp"
#include "core/counting_interpreter.hpp"
#include "core/dataflow_interpreter.hpp"
#include "core/executor_base.hpp"
#include "core/simulator.hpp"
#include "frontend/parser.hpp"
#include "kernels/livermore.hpp"
#include "memory/sa_array.hpp"
#include "partition/partitioner.hpp"
#include "runtime/sim_runtime.hpp"
#include "support/rng.hpp"
#include "support/text_table.hpp"

namespace {

using namespace sap;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Best-of-N timing: repeats setup (untimed) + run (timed) until at least
/// `kMinReps` repetitions and `kMinSeconds` of accumulated run time.
template <typename SetupFn, typename RunFn>
double measure_seconds(SetupFn&& setup, RunFn&& run) {
  constexpr int kMinReps = 3;
  constexpr int kMaxReps = 500;
  constexpr double kMinSeconds = 0.25;
  double best = 1e30;
  double total = 0.0;
  for (int rep = 0; rep < kMaxReps; ++rep) {
    auto state = setup();
    const double t0 = now_seconds();
    run(state);
    const double dt = now_seconds() - t0;
    best = std::min(best, dt);
    total += dt;
    if (rep + 1 >= kMinReps && total >= kMinSeconds) break;
  }
  return best;
}

/// Counts statement instances (including reduction commits) by riding the
/// sequential walker's on_instance hook.
class InstanceCounter final : public SequentialExecutor {
 public:
  std::uint64_t count = 0;

 protected:
  void on_instance(const ArrayAssign&, PeId, std::int64_t, const EvalEnv&,
                   bool) override {
    ++count;
  }
};

struct Workload {
  std::string figure;
  std::string kernel;
  std::function<CompiledProgram()> build;
  bool dataflow = false;
};

CompiledProgram build_with_engine(const Workload& w, EvalEngine engine) {
  CompiledProgram prog = w.build();
  if (engine == EvalEngine::kTree) {
    prog.bytecode.reset();
  } else {
    // Rebuild the bytecode explicitly so the SAPART_BYTECODE_OPT knob is
    // honored regardless of the environment the kernel builder saw: 'on'
    // measures the optimized tier (superinstructions + hoisting), 'off'
    // the straight-line compile.
    ProgramBytecode bc = compile_bytecode(prog.program, prog.sema);
    if (bytecode_opt_from_env() == BytecodeOpt::kOn) {
      bc = optimize_bytecode(std::move(bc), prog.program, prog.sema);
    }
    prog.bytecode = std::make_shared<const ProgramBytecode>(std::move(bc));
  }
  return prog;
}

/// Statement execution only: the reference walker over a plain registry.
double time_stmt_exec(const CompiledProgram& prog) {
  return measure_seconds(
      [&] {
        auto registry = std::make_unique<ArrayRegistry>();
        materialize_arrays(prog, *registry);
        return registry;
      },
      [&](std::unique_ptr<ArrayRegistry>& registry) {
        SequentialExecutor executor;
        executor.execute(prog, *registry);
      });
}

double time_counting(const CompiledProgram& prog, const MachineConfig& config) {
  return measure_seconds(
      [&] {
        auto machine = std::make_unique<Machine>(config);
        materialize_arrays(prog, *machine);
        return machine;
      },
      [&](std::unique_ptr<Machine>& machine) {
        run_counting(prog, *machine);
      });
}

/// `workers` == 0: the serial round-robin scheduler (the oracle);
/// otherwise the sharded runtime with that many replay workers.
double time_dataflow(const CompiledProgram& prog, const MachineConfig& config,
                     unsigned workers = 0) {
  return measure_seconds(
      [&] {
        auto machine = std::make_unique<Machine>(config);
        materialize_arrays(prog, *machine);
        return machine;
      },
      [&](std::unique_ptr<Machine>& machine) {
        if (workers == 0) {
          run_dataflow_serial(prog, *machine);
        } else {
          run_dataflow_sharded(prog, *machine, ShardRuntimeOptions{workers});
        }
      });
}

std::string rate(double instances, double seconds) {
  return TextTable::num(instances / seconds / 1e6, 2) + " M/s";
}

// ------------------------------------------------------------------ micro

double time_partition_lookup() {
  const Partitioner part(make_partition_scheme(PartitionKind::kModulo), 32,
                         64);
  const SaArray array(0, "A", ArrayShape::vector_1based(1 << 16));
  return measure_seconds(
      [] { return 0; },
      [&](int&) {
        std::int64_t linear = 0;
        std::uint64_t acc = 0;
        for (int i = 0; i < 1 << 16; ++i) {
          acc += part.owner_of_element(array, linear);
          linear = (linear + 97) & 0xFFFF;
        }
        if (acc == 0xFFFFFFFF) std::cout << "";  // defeat dead-code elim
      }) / (1 << 16);
}

double time_cache_ops() {
  return measure_seconds(
      [] {
        return std::make_unique<PageCache>(256, 32, ReplacementPolicy::kLru,
                                           42);
      },
      [&](std::unique_ptr<PageCache>& cache) {
        SplitMix64 rng(7);
        for (int i = 0; i < 1 << 15; ++i) {
          const PageId page{0, static_cast<PageIndex>(rng.next_below(64))};
          if (!cache->lookup(page, 0)) cache->insert(page, 0);
        }
      }) / (1 << 15);
}

/// Pure interpreter dispatch cost: ns per dispatched instruction for a
/// tight read-free arithmetic value program run through BytecodeFrame.
/// Honors SAPART_BYTECODE_OPT, so the row also shows what superinstruction
/// fusion does to the dispatch count (fewer, fatter instructions).
double time_bytecode_dispatch() {
  static const char* kSource =
      "PROGRAM dispatch\n"
      "ARRAY out(1)\n"
      "SCALAR a = 1.5\n"
      "SCALAR b = 2.25\n"
      "SCALAR c = -0.5\n"
      "out(1) = ((a + b) * (c - a) + (b * c - a) * (a - c)) / (b + 2.0)"
      " + a * b - c + (a + 1.0) * (b - 3.0) - (c + 4.0) / (a + 2.5)\n"
      "END PROGRAM\n";
  const CompiledProgram prog =
      compile(Parser::parse(kSource), EvalEngine::kBytecode,
              bytecode_opt_from_env());
  const CompiledExpr& ce = prog.bytecode->assigns.begin()->second.value;
  class NullReader final : public ArrayReader {
    std::optional<double> read(const std::string&,
                               const std::vector<std::int64_t>&) override {
      return 0.0;
    }
  } reader;
  BytecodeFrame frame;
  const BytecodeFrame::SlotHandle handle = frame.intern(ce);
  // The lexer canonicalizes identifiers to upper case.
  EvalEnv env;
  env.set("A", 1.5);
  env.set("B", 2.25);
  env.set("C", -0.5);
  constexpr int kReps = 1 << 15;
  const double seconds = measure_seconds(
      [] { return 0; },
      [&](int&) {
        double acc = 0.0;
        for (int i = 0; i < kReps; ++i) {
          acc += frame.run(ce, handle, env, reader).value_or(0.0);
        }
        if (acc == 1e308) std::cout << "";  // defeat dead-code elim
      });
  return seconds / (static_cast<double>(kReps) *
                    static_cast<double>(ce.code.size()));
}

double time_sa_array_ops() {
  return measure_seconds(
      [] { return std::make_unique<SaArray>(0, "A",
                                            ArrayShape::vector_1based(4096)); },
      [&](std::unique_ptr<SaArray>& array) {
        for (std::int64_t i = 0; i < 4096; ++i) array->write(i, 1.0);
        double sum = 0.0;
        for (std::int64_t i = 0; i < 4096; ++i) sum += array->read(i);
        if (sum < 0) std::cout << "";
      }) / 8192;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "P1: simulator perf baseline — tree walk vs bytecode engine "
              "on the fig1-fig5 workloads, plus substrate micro-benchmarks.");
  bench::print_header(
      "P1 — Simulator Performance (tree walk vs bytecode)",
      "statement execution, counting simulation, dataflow simulation; "
      "best-of-N wall time, materialization excluded");

  const std::vector<Workload> workloads = {
      {"fig1", "k01_hydro", [] { return build_k1_hydro(); }, true},
      {"fig2", "k02_iccg", [] { return build_k2_iccg(); }, false},
      {"fig3", "k18_hydro2d", [] { return build_k18_explicit_hydro_2d(); },
       false},
      {"fig4", "k06_glr", [] { return build_k6_general_linear_recurrence(); },
       false},
      {"fig5", "k18_hydro2d(400)",
       [] { return build_k18_explicit_hydro_2d(400); }, false},
      // Conditional kernels: guard evaluation + branch dispatch on the
      // statement path, lazy SELECT on the expression path.
      {"fig6", "k15_flow_limiter", [] { return build_k15_flow_limiter(); },
       false},
      {"fig6", "k16_min_search(20k)",
       [] { return build_k16_min_search(20000); }, false},
      {"fig6", "k24_first_min(20k)", [] { return build_k24_first_min(20000); },
       false},
  };
  const MachineConfig config = bench::paper_config().with_pes(16);

  TextTable table({"workload", "kernel", "phase", "instances", "tree ms",
                   "bytecode ms", "speedup", "tree thrpt", "bytecode thrpt"});
  double stmt_speedup_product = 1.0;
  std::size_t stmt_rows = 0;

  for (const Workload& w : workloads) {
    const CompiledProgram tree = build_with_engine(w, EvalEngine::kTree);
    const CompiledProgram bytecode =
        build_with_engine(w, EvalEngine::kBytecode);

    InstanceCounter counter;
    {
      ArrayRegistry registry;
      materialize_arrays(tree, registry);
      counter.execute(tree, registry);
    }
    const auto instances = static_cast<double>(counter.count);

    struct Phase {
      std::string name;
      double tree_s;
      double bytecode_s;
    };
    std::vector<Phase> phases;
    phases.push_back({"stmt-exec", time_stmt_exec(tree),
                      time_stmt_exec(bytecode)});
    phases.push_back({"counting-sim", time_counting(tree, config),
                      time_counting(bytecode, config)});
    if (w.dataflow) {
      phases.push_back({"dataflow-sim", time_dataflow(tree, config),
                        time_dataflow(bytecode, config)});
    }

    for (const Phase& p : phases) {
      const double speedup = p.tree_s / p.bytecode_s;
      if (p.name == "stmt-exec") {
        stmt_speedup_product *= speedup;
        ++stmt_rows;
      }
      table.add_row({w.figure, w.kernel, p.name,
                     TextTable::num(instances, 0),
                     TextTable::num(p.tree_s * 1e3, 2),
                     TextTable::num(p.bytecode_s * 1e3, 2),
                     TextTable::num(speedup, 2) + "x",
                     rate(instances, p.tree_s),
                     rate(instances, p.bytecode_s)});
    }
  }

  const double stmt_geomean =
      std::pow(stmt_speedup_product, 1.0 / static_cast<double>(stmt_rows));
  table.add_row({"all", "-", "stmt-exec geomean", "-", "-", "-",
                 TextTable::num(stmt_geomean, 2) + "x", "-", "-"});

  // ---------------------------------------------------------------- sharded
  // Dataflow scheduler scaling: the serial round-robin oracle vs the
  // sharded runtime at 1/2/8 replay workers, on scaled-up fig workloads
  // (the paper-size kernels finish in microseconds — too small to say
  // anything about scheduler scaling).  The w8-vs-serial speedup on the
  // bytecode engine is the tentpole claim tracked by the trajectory.
  const std::vector<Workload> dataflow_workloads = {
      {"fig1", "k01_hydro(50k)", [] { return build_k1_hydro(50000); }, true},
      {"fig2", "k02_iccg(32768)", [] { return build_k2_iccg(32768); }, true},
      {"fig3", "k18_hydro2d(800)",
       [] { return build_k18_explicit_hydro_2d(800); }, true},
      {"fig4", "k06_glr(400)",
       [] { return build_k6_general_linear_recurrence(400); }, true},
      {"fig5", "k18_hydro2d(2000)",
       [] { return build_k18_explicit_hydro_2d(2000); }, true},
  };
  double w8_speedup_product = 1.0;
  for (const Workload& w : dataflow_workloads) {
    const CompiledProgram tree = build_with_engine(w, EvalEngine::kTree);
    const CompiledProgram bytecode =
        build_with_engine(w, EvalEngine::kBytecode);
    InstanceCounter counter;
    {
      ArrayRegistry registry;
      materialize_arrays(tree, registry);
      counter.execute(tree, registry);
    }
    const auto instances = static_cast<double>(counter.count);

    struct SchedulerPhase {
      std::string name;
      unsigned workers;  // 0 = serial scheduler
    };
    const std::vector<SchedulerPhase> phases = {
        {"dataflow-serial", 0},
        {"dataflow-w1", 1},
        {"dataflow-w2", 2},
        {"dataflow-w8", 8},
    };
    double serial_bytecode_s = 0.0;
    for (const SchedulerPhase& p : phases) {
      const double tree_s = time_dataflow(tree, config, p.workers);
      const double bytecode_s = time_dataflow(bytecode, config, p.workers);
      if (p.workers == 0) serial_bytecode_s = bytecode_s;
      if (p.workers == 8) {
        w8_speedup_product *= serial_bytecode_s / bytecode_s;
      }
      table.add_row({w.figure, w.kernel, p.name,
                     TextTable::num(instances, 0),
                     TextTable::num(tree_s * 1e3, 2),
                     TextTable::num(bytecode_s * 1e3, 2),
                     TextTable::num(tree_s / bytecode_s, 2) + "x",
                     rate(instances, tree_s),
                     rate(instances, bytecode_s)});
    }
  }
  const double dataflow_geomean = std::pow(
      w8_speedup_product, 1.0 / static_cast<double>(dataflow_workloads.size()));
  table.add_row({"all", "-", "dataflow w8-vs-serial geomean", "-", "-", "-",
                 TextTable::num(dataflow_geomean, 2) + "x", "-", "-"});
  // The parallel speedup is bounded by the host: on a single-CPU machine
  // the sharded runtime can at best break even with the serial scheduler.
  // Recording the thread count and the compiler makes every artifact
  // self-interpreting — tools/bench_diff.py treats the pair as a machine
  // fingerprint and skips cross-machine ratio checks on a mismatch.
  table.add_row({"env", "hardware_threads", "count",
                 std::to_string(std::thread::hardware_concurrency()), "-",
                 "-", "-", "-", "-"});
#if defined(__clang__)
  const std::string compiler = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  const std::string compiler = std::string("gcc ") + __VERSION__;
#else
  const std::string compiler = "unknown";
#endif
  table.add_row({"env", "compiler", "id", compiler, "-", "-", "-", "-", "-"});
  // The interpreter build (computed-goto vs switch) and the optimizer knob
  // both shift the bytecode columns, so they are part of the artifact's
  // self-description too.
  table.add_row({"env", "bytecode_dispatch", "kind",
                 std::string(bytecode_dispatch_kind()), "-", "-", "-", "-",
                 "-"});
  table.add_row({"env", "bytecode_opt", "knob",
                 to_string(bytecode_opt_from_env()), "-", "-", "-", "-",
                 "-"});

  // Substrate micro-benchmarks: engine-independent, ns per operation.
  const double partition_ns = time_partition_lookup() * 1e9;
  const double cache_ns = time_cache_ops() * 1e9;
  const double sa_ns = time_sa_array_ops() * 1e9;
  const double dispatch_ns = time_bytecode_dispatch() * 1e9;
  table.add_row({"micro", "partition_owner_lookup", "ns/op",
                 TextTable::num(partition_ns, 1), "-", "-", "-", "-", "-"});
  table.add_row({"micro", "page_cache_lookup_insert", "ns/op",
                 TextTable::num(cache_ns, 1), "-", "-", "-", "-", "-"});
  table.add_row({"micro", "sa_array_write_read", "ns/op",
                 TextTable::num(sa_ns, 1), "-", "-", "-", "-", "-"});
  table.add_row({"micro", "bytecode_dispatch", "ns/op",
                 TextTable::num(dispatch_ns, 1), "-", "-", "-", "-", "-"});

  std::cout << table.to_string() << "\n"
            << "statement-execution speedup (geomean over fig1-fig5): "
            << TextTable::num(stmt_geomean, 2) << "x (target: >= 3x)\n"
            << "sharded dataflow speedup at 8 workers vs serial scheduler "
               "(geomean over fig1-fig5, bytecode engine): "
            << TextTable::num(dataflow_geomean, 2)
            << "x (target: >= 2x on a host with >= 8 hardware threads; "
            << std::thread::hardware_concurrency()
            << " available here)\n";
  bench::emit_table("perf_simulator", table);
  // The speedup target is a soft gate enforced in review via the recorded
  // artifact, not an exit code: shared-runner timing noise must not turn
  // the CI perf-smoke job red (see docs/BENCH_FORMAT.md).
  return 0;
}
