// P1 — google-benchmark perf suite for the simulator itself: substrate
// micro-benchmarks (partition math, cache ops, SA-store ops) and
// whole-kernel simulation throughput in both execution modes.
#include <benchmark/benchmark.h>

#include "cache/page_cache.hpp"
#include "core/simulator.hpp"
#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"
#include "memory/sa_array.hpp"
#include "partition/partitioner.hpp"
#include "support/rng.hpp"

namespace {

using namespace sap;

void BM_PartitionOwnerLookup(benchmark::State& state) {
  const Partitioner part(make_partition_scheme(PartitionKind::kModulo), 32,
                         static_cast<std::uint32_t>(state.range(0)));
  const SaArray array(0, "A", ArrayShape::vector_1based(1 << 16));
  std::int64_t linear = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part.owner_of_element(array, linear));
    linear = (linear + 97) & 0xFFFF;
  }
}
BENCHMARK(BM_PartitionOwnerLookup)->Arg(4)->Arg(64);

void BM_PageCacheLookupInsert(benchmark::State& state) {
  PageCache cache(256, 32,
                  static_cast<ReplacementPolicy>(state.range(0)), 42);
  SplitMix64 rng(7);
  for (auto _ : state) {
    const PageId page{0, static_cast<PageIndex>(rng.next_below(64))};
    if (!cache.lookup(page, 0)) cache.insert(page, 0);
  }
}
BENCHMARK(BM_PageCacheLookupInsert)->Arg(0)->Arg(1)->Arg(2);

void BM_SaArrayWriteRead(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SaArray array(0, "A", ArrayShape::vector_1based(4096));
    state.ResumeTiming();
    for (std::int64_t i = 0; i < 4096; ++i) array.write(i, 1.0);
    double sum = 0.0;
    for (std::int64_t i = 0; i < 4096; ++i) sum += array.read(i);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_SaArrayWriteRead);

void BM_CountingSimulation(benchmark::State& state) {
  const CompiledProgram prog = build_kernel("k01_hydro");
  const Simulator sim(
      MachineConfig{}.with_pes(static_cast<std::uint32_t>(state.range(0))));
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    const auto result = sim.run(prog, ExecutionMode::kCounting);
    accesses = result.totals.total_reads() + result.totals.writes;
    benchmark::DoNotOptimize(result.totals.remote_reads);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_CountingSimulation)->Arg(4)->Arg(64);

void BM_DataflowSimulation(benchmark::State& state) {
  const CompiledProgram prog = build_kernel("k01_hydro");
  const Simulator sim(
      MachineConfig{}.with_pes(static_cast<std::uint32_t>(state.range(0))));
  for (auto _ : state) {
    const auto result = sim.run(prog, ExecutionMode::kDataflow);
    benchmark::DoNotOptimize(result.totals.remote_reads);
  }
}
BENCHMARK(BM_DataflowSimulation)->Arg(4)->Arg(16);

void BM_Iccg(benchmark::State& state) {
  const CompiledProgram prog = build_kernel("k02_iccg");
  const Simulator sim(MachineConfig{}.with_pes(16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(prog).totals.remote_reads);
  }
}
BENCHMARK(BM_Iccg);

void BM_Hydro2dFigure5(benchmark::State& state) {
  const CompiledProgram prog = build_k18_explicit_hydro_2d(400);
  const Simulator sim(MachineConfig{}.with_pes(64));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(prog).totals.remote_reads);
  }
}
BENCHMARK(BM_Hydro2dFigure5);

void BM_CompileFrontend(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_kernel("k18_hydro2d").sema.arrays.size());
  }
}
BENCHMARK(BM_CompileFrontend);

}  // namespace

BENCHMARK_MAIN();
