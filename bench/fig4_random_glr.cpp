// Figure 4 — "Random access pattern. Poor performance of RD can be
// overcome by larger cache sizes."  General Linear Recurrence (LFK 6):
// the B(k,i) column walk revisits far more pages than the 256-element
// cache holds, so remote ratios stay high with or without caching.
#include "bench_common.hpp"
#include "kernels/livermore.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Figure 4: random access (General Linear Recurrence, LFK 6) — remote reads vs PEs.");
  bench::print_header(
      "Figure 4 — Random Access Pattern (General Linear Recurrence, LFK 6)",
      "W(i) = W(i) + B(k,i)*W(i-k); the column walk thrashes the cache");

  const CompiledProgram prog = build_k6_general_linear_recurrence();
  const auto series = figure_series(prog, bench::paper_config(),
                                    {1, 2, 4, 8, 16, 32}, {32, 64},
                                    &bench::pool());
  bench::emit_series("fig4", series, "PEs",
                     "GLR: % remote reads vs PEs");

  std::cout << "paper: 30-70% remote regardless of caching\n"
            << "ours:  cache " << TextTable::num(series[0].y_at(4), 1)
            << "-" << TextTable::num(series[0].y_at(32), 1)
            << "%, no-cache " << TextTable::num(series[2].y_at(4), 1) << "-"
            << TextTable::num(series[2].y_at(32), 1)
            << "% (cache helps < 3x)\n";
  return 0;
}
