// Figure 5 — "Typical remote access load balance. Evenly balanced loads
// result from the area-of-responsibility concept."  2-D Explicit
// Hydrodynamics on 64 PEs, page size 32: per-PE local and remote read
// counts, with and without the cache, plus balance summary statistics.
#include "bench_common.hpp"
#include "kernels/livermore.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
  using namespace sap;
  bench::init(argc, argv,
              "Figure 5: per-PE load balance (2-D Explicit Hydro on 64 PEs).");
  bench::print_header(
      "Figure 5 — Load Balance (2-D Explicit Hydro, 64 PEs, ps 32)",
      "per-PE local and remote reads under the area-of-responsibility rule");

  // Figure 5 uses a grid large enough that all 64 PEs own pages.
  const CompiledProgram prog = build_k18_explicit_hydro_2d(400);
  const auto results = parallel_sweep_results(
      {{&prog, bench::paper_config().with_pes(64)},
       {&prog, bench::paper_config().with_pes(64).with_cache(0)}},
      &bench::pool());
  const SimulationResult& with_cache = results[0];
  const SimulationResult& without_cache = results[1];

  TextTable table({"PE", "local (cache)", "remote (cache)",
                   "local (no cache)", "remote (no cache)"});
  for (std::size_t pe = 0; pe < 64; ++pe) {
    table.add_row({std::to_string(pe),
                   std::to_string(with_cache.per_pe[pe].local_reads),
                   std::to_string(with_cache.per_pe[pe].remote_reads),
                   std::to_string(without_cache.per_pe[pe].local_reads),
                   std::to_string(without_cache.per_pe[pe].remote_reads)});
  }
  std::cout << table.to_string() << "\n";
  bench::emit_table("fig5", table);

  const auto summarize = [](const char* label, const LoadBalance& lb) {
    std::cout << label << ": mean " << TextTable::num(lb.mean, 1) << ", min "
              << TextTable::num(lb.min, 0) << ", max "
              << TextTable::num(lb.max, 0) << ", cv "
              << TextTable::num(lb.coefficient_of_variation(), 3)
              << ", imbalance " << TextTable::num(lb.imbalance(), 2) << "\n";
  };
  summarize("local reads  (cache)   ", with_cache.local_read_balance());
  summarize("remote reads (cache)   ", with_cache.remote_read_balance());
  summarize("local reads  (no cache)", without_cache.local_read_balance());
  summarize("remote reads (no cache)", without_cache.remote_read_balance());
  summarize("writes                 ", with_cache.write_balance());

  std::cout << "\npaper: \"each of the sixty-four PEs performs a comparable "
               "number of remote reads and local reads\"\n";
  return 0;
}
